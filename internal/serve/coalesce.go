package serve

import (
	"sync"
	"time"

	"tracon/internal/obs"
)

// DefaultBatchMax caps one scheduling pass's batch when Config.BatchMax
// is zero: the coalescer flushes early at this size and the batch endpoint
// refuses larger requests.
const DefaultBatchMax = 256

// Coalescer micro-batches singleton submissions: a task arriving on
// POST /v1/tasks waits up to one coalesce window for companions, then the
// whole group goes through a single queue-aware scheduling pass
// (Placer.SubmitBatch) — the paper's batch schedulers score the entire
// backlog, so co-runner pairing decisions see every waiting task instead
// of a single head. A group also flushes early when it reaches maxBatch.
//
// Each waiter holds its own HTTP goroutine (and admission token); the
// flush runs on the goroutine that tripped it — no background worker, no
// work left behind on shutdown.
type Coalescer struct {
	placer   *Placer
	clock    obs.Clock
	window   time.Duration
	maxBatch int

	// sizeHist records tasks per flushed batch, decisionHist the scheduling
	// latency of one flush, waiting the submissions currently parked.
	sizeHist     *obs.Histogram
	decisionHist *obs.Histogram
	waiting      *obs.Gauge

	mu      sync.Mutex
	pending []coalesceEntry
	timer   obs.Timer // armed while a partial group waits out its window
}

// coalesceEntry is one parked submission and its reply channel.
type coalesceEntry struct {
	app    string
	reqID  string
	key    string // idempotency key ("" when the client supplied no ID)
	parked time.Time
	ch     chan coalesceResult
}

type coalesceResult struct {
	rec *Placement
	err error
}

// NewCoalescer builds the micro-batcher over a placer. window must be
// positive; maxBatch <= 0 takes DefaultBatchMax; a nil clock takes the
// wall clock.
func NewCoalescer(placer *Placer, clock obs.Clock, window time.Duration, maxBatch int, reg *obs.Registry) *Coalescer {
	if maxBatch <= 0 {
		maxBatch = DefaultBatchMax
	}
	if clock == nil {
		clock = obs.Wall
	}
	return &Coalescer{
		placer:       placer,
		clock:        clock,
		window:       window,
		maxBatch:     maxBatch,
		sizeHist:     reg.Histogram("serve.batch_size", obs.BatchSizeBuckets()),
		decisionHist: reg.Histogram("serve.batch_decision_seconds", obs.DefaultLatencyBuckets()),
		waiting:      reg.Gauge("serve.coalesce_waiting"),
	}
}

// Submit parks one task until its group flushes and returns the task's own
// outcome. Blocks for at most the coalesce window plus one scheduling
// pass.
func (c *Coalescer) Submit(app string) (*Placement, error) {
	return c.SubmitTagged(app, "")
}

// SubmitTagged is Submit carrying the originating request ID through the
// batch to the placement record and its trace spans.
func (c *Coalescer) SubmitTagged(app, reqID string) (*Placement, error) {
	return c.SubmitKeyed(app, reqID, "")
}

// SubmitKeyed is SubmitTagged with an idempotency key, carried through
// the flushed batch so a keyed retry dedups even when it lands in a
// different micro-batch than the original.
func (c *Coalescer) SubmitKeyed(app, reqID, key string) (*Placement, error) {
	ch := make(chan coalesceResult, 1)
	c.mu.Lock()
	c.pending = append(c.pending, coalesceEntry{app: app, reqID: reqID, key: key, parked: c.clock.Now(), ch: ch})
	c.waiting.Set(float64(len(c.pending)))
	if len(c.pending) >= c.maxBatch {
		batch := c.takeLocked()
		c.mu.Unlock()
		c.flush(batch)
	} else {
		if c.timer == nil {
			c.timer = c.clock.AfterFunc(c.window, c.flushOnTimer)
		}
		c.mu.Unlock()
	}
	res := <-ch
	return res.rec, res.err
}

// Waiting reports how many submissions are currently parked; the
// deterministic simulation harness uses it to sequence waiters before
// advancing the clock.
func (c *Coalescer) Waiting() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// takeLocked claims the pending group and disarms the window timer.
func (c *Coalescer) takeLocked() []coalesceEntry {
	batch := c.pending
	c.pending = nil
	c.waiting.Set(0)
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	return batch
}

// flushOnTimer fires when a partial group's window expires.
func (c *Coalescer) flushOnTimer() {
	c.mu.Lock()
	batch := c.takeLocked()
	c.mu.Unlock()
	c.flush(batch)
}

// flush runs one queue-aware scheduling pass over the group and delivers
// each waiter its own outcome.
func (c *Coalescer) flush(batch []coalesceEntry) {
	if len(batch) == 0 {
		return
	}
	apps := make([]string, len(batch))
	reqIDs := make([]string, len(batch))
	keys := make([]string, len(batch))
	t0 := c.clock.Now()
	for i, e := range batch {
		apps[i] = e.app
		reqIDs[i] = e.reqID
		keys[i] = e.key
		// The parked interval ends when the flush trips, scheduling excluded.
		c.placer.tracer.coalesceWait(e.reqID, e.app, t0.Sub(e.parked))
	}
	outcomes, err := c.placer.SubmitBatchKeyed(apps, reqIDs, keys)
	c.decisionHist.Observe(c.clock.Since(t0).Seconds())
	c.sizeHist.Observe(float64(len(batch)))
	for i, e := range batch {
		res := coalesceResult{rec: outcomes[i].Placement, err: outcomes[i].Err}
		if res.err == nil && err != nil {
			// A global scheduling failure surfaces on every admitted task,
			// mirroring what a singleton Submit would have returned.
			res = coalesceResult{err: err}
		}
		e.ch <- res
	}
}
