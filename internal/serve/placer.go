package serve

import (
	"errors"
	"fmt"
	"sync"

	"tracon/internal/durable"
	"tracon/internal/model"
	"tracon/internal/obs"
	"tracon/internal/sched"
)

// ErrUnknownPlacement is returned for an ID the placer has never issued
// (or has already evicted from the finished ring).
var ErrUnknownPlacement = errors.New("serve: unknown placement")

// ErrNotPlaced is returned when completing a task that is not currently
// occupying a slot (still queued, already completed, or failed).
var ErrNotPlaced = errors.New("serve: placement is not in the placed state")

// ErrUnknownMachine is returned for a machine index outside the inventory.
var ErrUnknownMachine = errors.New("serve: unknown machine")

// ErrBadTransition is returned for a machine lifecycle operation that is
// invalid in the machine's current state (draining a down machine, reviving
// one that never died, ...).
var ErrBadTransition = errors.New("serve: invalid machine state transition")

// ErrQueueFull is returned when the admission bound refuses a submission:
// the backlog (plus whatever free capacity could still absorb it) is at
// the scaled queue bound. The HTTP layer maps it to 429 + Retry-After.
var ErrQueueFull = errors.New("serve: placement queue is full")

// Placement status values.
const (
	StatusQueued    = "queued"
	StatusPlaced    = "placed"
	StatusCompleted = "completed"
	StatusFailed    = "failed"
)

// Placement is the lifecycle record of one submitted task.
type Placement struct {
	ID  string `json:"id"`
	App string `json:"app"`
	// Status is queued, placed, completed or failed.
	Status string `json:"status"`
	// Machine and Slot locate the placement (-1 while queued).
	Machine int `json:"machine"`
	Slot    int `json:"slot"`
	// Neighbour is the application occupying the machine's other VM at
	// placement time ("" for an idle machine).
	Neighbour string `json:"neighbour"`
	// PredictedRuntime and PredictedIOPS are the active model's forecast
	// for this co-location, captured at placement time; completions report
	// observed values against them to drive drift detection.
	PredictedRuntime float64 `json:"predicted_runtime_s"`
	PredictedIOPS    float64 `json:"predicted_iops"`
	// Generation is the model generation that made the decision.
	Generation uint64 `json:"generation"`
	// Error carries the failure reason for StatusFailed.
	Error string `json:"error,omitempty"`
	// Retries counts how many times the task was re-queued after losing its
	// machine (kill re-placement).
	Retries int `json:"retries,omitempty"`
	// ReqID is the X-Request-Id of the submission that created the task,
	// joining the placement record (and its trace spans) back to the HTTP
	// request, its access-log line, and the client's own records.
	ReqID string `json:"request_id,omitempty"`

	// bg is the neighbour's characteristic vector at placement time, kept
	// for the retraining sample the completion observation turns into.
	bg []float64
	// idem is the idempotency key the submission was registered under (""
	// for server-minted request IDs). A resubmission carrying the same key
	// — a client retry across a daemon crash — returns this record instead
	// of creating a duplicate.
	idem string
}

// clone returns a copy safe to hand out after the placer lock is dropped.
func (p *Placement) clone() *Placement {
	c := *p
	c.bg = append([]float64(nil), p.bg...)
	return &c
}

// slot is one VM of a two-VM machine.
type slot struct {
	taskID string // "" when free
	app    string
}

// Machine lifecycle states. Up machines accept placements; drained
// (cordoned) machines finish their in-flight tasks but take no new ones;
// down (killed) machines have lost their in-flight tasks, which the placer
// re-queues for placement elsewhere.
const (
	MachineUp      = "up"
	MachineDrained = "drained"
	MachineDown    = "down"
)

// machine is one physical host: two VMs, per the testbed model.
type machine struct {
	slots [2]slot
	state string
}

// SlotsPerMachine mirrors the two-VM machine model of the simulator.
const SlotsPerMachine = 2

// Placer owns the serving-side cluster state: the machine inventory, the
// FIFO backlog, and the placement records. All mutations happen under one
// mutex, but the expensive part of a scheduling pass — model scoring over
// the backlog — runs OUTSIDE the lock against an immutable snapshot of
// the inventory, then commits its decisions only if nothing changed in
// between (a version counter guards the snapshot). Under contention the
// commit retries with a fresh snapshot, falling back to fully-locked
// scheduling so progress is guaranteed.
//
// Admission is enforced here, atomically with the enqueue: the scaled
// queue bound is checked and the task enqueued under one critical section,
// so concurrent submits can never drive the backlog past the bound.
type Placer struct {
	models    *ModelSet
	admission *Admission // nil disables the queue bound
	// tracer records lifecycle spans (nil-safe; set by serve.New).
	tracer *serveTracer
	// journal receives one event per state mutation, appended inside the
	// same critical section as the mutation (nil-safe; set by recovery).
	journal *journal
	// clock times scheduling passes for the tracer; serve.New overrides it
	// with the configured clock.
	clock obs.Clock

	mu         sync.Mutex
	machines   []machine
	queue      []string // queued placement IDs, FIFO
	placements map[string]*Placement
	nextID     int64
	// dedup maps idempotency keys to placement IDs for as long as the
	// record itself is retained; entries leave with the finished ring.
	dedup map[string]string

	// version stamps the mutable state (queue, slots, machine states);
	// every mutation bumps it, and an optimistic scheduling pass commits
	// only if the version still matches its snapshot.
	version uint64

	// done is the FIFO of finished (completed/failed) placement IDs; the
	// oldest records are dropped beyond doneCap so the map stays bounded.
	done    []string
	doneCap int

	// placedCount tracks busy slots for O(1) free-slot queries.
	placedCount int
}

// DefaultCompletedCap bounds how many finished placement records are kept
// for GET /v1/placements/{id}.
const DefaultCompletedCap = 65536

// NewPlacer builds an empty inventory of machines. admission may be nil,
// in which case no queue bound is enforced.
func NewPlacer(models *ModelSet, admission *Admission, machines, completedCap int) (*Placer, error) {
	if machines <= 0 {
		return nil, fmt.Errorf("serve: need at least one machine, got %d", machines)
	}
	if completedCap <= 0 {
		completedCap = DefaultCompletedCap
	}
	inventory := make([]machine, machines)
	for i := range inventory {
		inventory[i].state = MachineUp
	}
	return &Placer{
		models:     models,
		admission:  admission,
		clock:      obs.Wall,
		machines:   inventory,
		placements: map[string]*Placement{},
		dedup:      map[string]string{},
		doneCap:    completedCap,
	}, nil
}

// Submit validates, admits, records and tries to place one task. The
// returned Placement is a copy; its status is placed when a slot was free
// (or the scheduler chose to use one) and queued otherwise. The admission
// bound is checked atomically with the enqueue: at no instant can
// concurrent submits push the backlog past the scaled bound.
func (p *Placer) Submit(app string) (*Placement, error) {
	return p.SubmitTagged(app, "")
}

// SubmitTagged is Submit carrying the originating request ID, which lands
// on the placement record and every trace span the task emits.
func (p *Placer) SubmitTagged(app, reqID string) (*Placement, error) {
	return p.SubmitKeyed(app, reqID, "")
}

// SubmitKeyed is SubmitTagged with an idempotency key: a non-empty key
// that matches a retained record — a client retrying a submit it never
// saw acknowledged, possibly across a daemon crash — returns that record
// instead of admitting a duplicate. The dedup check, the admission bound
// and the enqueue share one critical section, and the admit event is
// journaled (and, under fsync=always, on disk) before the caller is
// acknowledged.
func (p *Placer) SubmitKeyed(app, reqID, key string) (*Placement, error) {
	view := p.models.View()
	if err := p.checkKnown(view, app); err != nil {
		return nil, err
	}
	p.mu.Lock()
	if key != "" {
		if id, ok := p.dedup[key]; ok {
			if rec, ok := p.placements[id]; ok {
				out := rec.clone()
				p.mu.Unlock()
				return out, nil
			}
		}
	}
	if budget := p.admitBudgetLocked(); budget == 0 {
		p.mu.Unlock()
		p.tracer.reject(reqID, app, "queue full")
		return nil, ErrQueueFull
	}
	rec := p.enqueueLocked(app, reqID)
	if key != "" {
		rec.idem = key
		p.dedup[key] = rec.ID
	}
	if p.journal.enabled() {
		p.journal.append(admitEvent(rec))
	}
	p.mu.Unlock()
	p.tracer.admit(reqID, rec.ID, app)
	if err := p.drain(); err != nil {
		return nil, err
	}
	return p.snapshotRecord(rec), nil
}

// BatchOutcome is one task's result inside a SubmitBatch: either a
// placement record or a per-task error (unknown application, queue full).
type BatchOutcome struct {
	Placement *Placement
	Err       error
}

// SubmitBatch admits and enqueues a whole batch under one critical
// section, then runs queue-aware scheduling passes over the combined
// backlog — the batch schedulers (MIBS/MIX) see every queued task at once
// instead of a stream of singletons. Outcomes are per task and positional:
// unknown applications and tasks beyond the admission budget are rejected
// individually without failing the rest of the batch. The returned error
// is global (a scheduling failure); per-task problems live in the slice.
func (p *Placer) SubmitBatch(apps []string) ([]BatchOutcome, error) {
	return p.SubmitBatchTagged(apps, nil)
}

// SubmitBatchTagged is SubmitBatch carrying per-task request IDs
// (positional with apps; nil or short slices leave the remainder untagged).
func (p *Placer) SubmitBatchTagged(apps, reqIDs []string) ([]BatchOutcome, error) {
	return p.SubmitBatchKeyed(apps, reqIDs, nil)
}

// SubmitBatchKeyed is SubmitBatchTagged with per-task idempotency keys
// (positional; nil or short slices leave the remainder unkeyed). A task
// whose key matches a retained record returns that record without
// re-admitting it; the freshly admitted remainder is journaled as one
// batch_admit event — one commit point, one fsync.
func (p *Placer) SubmitBatchKeyed(apps, reqIDs, keys []string) ([]BatchOutcome, error) {
	view := p.models.View()
	out := make([]BatchOutcome, len(apps))
	var recs []*Placement
	reqID := func(i int) string {
		if i < len(reqIDs) {
			return reqIDs[i]
		}
		return ""
	}
	key := func(i int) string {
		if i < len(keys) {
			return keys[i]
		}
		return ""
	}

	p.mu.Lock()
	budget := p.admitBudgetLocked()
	deduped := make([]bool, len(apps))
	for i, app := range apps {
		if k := key(i); k != "" {
			if id, ok := p.dedup[k]; ok {
				if rec, ok := p.placements[id]; ok {
					out[i].Placement = rec // live pointer; cloned below
					deduped[i] = true
					continue
				}
			}
		}
		if err := p.checkKnown(view, app); err != nil {
			out[i].Err = err
			continue
		}
		if budget == 0 {
			out[i].Err = ErrQueueFull
			continue
		}
		if budget > 0 {
			budget--
		}
		rec := p.enqueueLocked(app, reqID(i))
		if k := key(i); k != "" {
			rec.idem = k
			p.dedup[k] = rec.ID
		}
		out[i].Placement = rec // live pointer; snapshotted after the drain
		recs = append(recs, rec)
	}
	if p.journal.enabled() && len(recs) > 0 {
		refs := make([]durable.TaskRef, len(recs))
		for i, rec := range recs {
			refs[i] = taskRef(rec)
		}
		p.journal.append(durable.Event{Kind: durable.EvBatchAdmit, Tasks: refs, Machine: -1, Slot: -1})
	}
	p.mu.Unlock()
	for i, app := range apps {
		switch {
		case out[i].Placement != nil && !deduped[i]:
			p.tracer.admit(reqID(i), out[i].Placement.ID, app)
		case errors.Is(out[i].Err, ErrQueueFull):
			p.tracer.reject(reqID(i), app, "queue full")
		}
	}

	var drainErr error
	if len(recs) > 0 {
		drainErr = p.drain()
	}
	p.mu.Lock()
	for i := range out {
		if out[i].Placement != nil {
			out[i].Placement = out[i].Placement.clone()
		}
	}
	p.mu.Unlock()
	return out, drainErr
}

// checkKnown reproduces the library's typed error for an application the
// current generation cannot score, so the HTTP layer can map it to 400
// without a second lookup.
func (p *Placer) checkKnown(view ModelView, app string) error {
	if view.Known[app] {
		return nil
	}
	_, err := view.Lib.SoloRuntime(app)
	if err == nil {
		err = fmt.Errorf("%w: %q", model.ErrUnknownApp, app)
	}
	return err
}

// enqueueLocked mints a record and appends it to the backlog.
func (p *Placer) enqueueLocked(app, reqID string) *Placement {
	p.nextID++
	rec := &Placement{
		ID:      fmt.Sprintf("t-%d", p.nextID),
		App:     app,
		Status:  StatusQueued,
		Machine: -1,
		Slot:    -1,
		ReqID:   reqID,
	}
	p.placements[rec.ID] = rec
	p.queue = append(p.queue, rec.ID)
	p.version++
	return rec
}

// admitBudgetLocked returns how many more submissions the admission bound
// allows right now (-1 = unbounded). The budget counts the free
// schedulable slots as absorption: the invariant it maintains is that the
// backlog left after the draining pass never exceeds the scaled bound —
// on a full cluster (no free slots) that means the instantaneous queue
// depth itself never exceeds the bound.
func (p *Placer) admitBudgetLocked() int {
	if p.admission == nil {
		return -1
	}
	available, total := p.capacityLocked()
	bound := p.admission.ScaledBound(available, total)
	if bound < 0 {
		return -1
	}
	budget := bound + p.freeSlotsLocked() - len(p.queue)
	if budget < 0 {
		budget = 0
	}
	return budget
}

// snapshotRecord clones a live record under the lock.
func (p *Placer) snapshotRecord(rec *Placement) *Placement {
	p.mu.Lock()
	defer p.mu.Unlock()
	return rec.clone()
}

// Observation is a completion report: what the task actually experienced.
type Observation struct {
	Runtime float64 `json:"runtime_s"`
	IOPS    float64 `json:"iops"`
}

// Complete frees the task's slot and re-runs the scheduler over the
// backlog. It returns the completed record (a copy).
func (p *Placer) Complete(id string) (*Placement, error) {
	p.mu.Lock()
	rec, ok := p.placements[id]
	if !ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlacement, id)
	}
	if rec.Status != StatusPlaced {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: %q is %s", ErrNotPlaced, id, rec.Status)
	}
	m := &p.machines[rec.Machine]
	if m.slots[rec.Slot].taskID != id {
		p.mu.Unlock()
		return nil, fmt.Errorf("serve: slot bookkeeping corrupt for %q", id)
	}
	m.slots[rec.Slot] = slot{}
	p.placedCount--
	rec.Status = StatusCompleted
	p.finishLocked(rec.ID)
	p.version++
	if p.journal.enabled() {
		p.journal.append(durable.Event{
			Kind: durable.EvComplete, Task: rec.ID,
			Machine: rec.Machine, Slot: rec.Slot,
		})
	}
	out := rec.clone()
	p.mu.Unlock()
	p.tracer.complete(out)
	if err := p.drain(); err != nil {
		// The completion itself landed; the post-completion drain failed.
		return out, err
	}
	return out, nil
}

// Get returns a copy of the placement record.
func (p *Placer) Get(id string) (*Placement, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, ok := p.placements[id]
	if !ok {
		return nil, false
	}
	return rec.clone(), true
}

// QueueDepth returns the backlog length.
func (p *Placer) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// QueueIDs returns the backlog's placement IDs in FIFO order (a copy).
// The deterministic simulation harness asserts re-queue ordering with it.
func (p *Placer) QueueIDs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.queue...)
}

// FreeSlots returns the number of idle VMs on schedulable (up) machines.
func (p *Placer) FreeSlots() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.freeSlotsLocked()
}

func (p *Placer) freeSlotsLocked() int {
	free := 0
	for i := range p.machines {
		if p.machines[i].state != MachineUp {
			continue
		}
		for _, s := range p.machines[i].slots {
			if s.taskID == "" {
				free++
			}
		}
	}
	return free
}

// Capacity reports the schedulable slot count (VMs on up machines) against
// the full inventory; admission control scales its queue bound by the
// ratio, so a cluster that lost machines sheds load instead of queueing
// work it cannot place.
func (p *Placer) Capacity() (available, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacityLocked()
}

func (p *Placer) capacityLocked() (available, total int) {
	for i := range p.machines {
		if p.machines[i].state == MachineUp {
			available += SlotsPerMachine
		}
	}
	return available, SlotsPerMachine * len(p.machines)
}

// Snapshot is one consistent view of the placer's load state, taken under
// a single lock acquisition — the shedding decision and the Retry-After
// hint read queue depth and capacity from the same instant instead of
// mixing two lock acquisitions' worth of state.
type Snapshot struct {
	QueueDepth int `json:"queue_depth"`
	FreeSlots  int `json:"free_slots"`
	Available  int `json:"available_slots"`
	Total      int `json:"total_slots"`
}

// Snapshot captures queue depth, free slots and capacity atomically.
func (p *Placer) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	available, total := p.capacityLocked()
	return Snapshot{
		QueueDepth: len(p.queue),
		FreeSlots:  p.freeSlotsLocked(),
		Available:  available,
		Total:      total,
	}
}

// Drain cordons an up machine: its in-flight tasks finish, but it accepts
// no new placements until Undrain.
func (p *Placer) Drain(id int) error {
	return p.transition(id, MachineUp, MachineDrained, durable.EvDrain, false)
}

// Undrain returns a drained machine to service and re-runs the scheduler —
// the restored capacity may immediately absorb backlog.
func (p *Placer) Undrain(id int) error {
	return p.transition(id, MachineDrained, MachineUp, durable.EvUndrain, true)
}

// Revive returns a down machine to service and re-runs the scheduler.
func (p *Placer) Revive(id int) error {
	return p.transition(id, MachineDown, MachineUp, durable.EvRevive, true)
}

// transition moves machine id from one state to another, optionally
// draining the backlog onto any capacity the transition restored.
func (p *Placer) transition(id int, from, to, kind string, redrain bool) error {
	p.mu.Lock()
	if id < 0 || id >= len(p.machines) {
		p.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownMachine, id)
	}
	m := &p.machines[id]
	if m.state != from {
		p.mu.Unlock()
		return fmt.Errorf("%w: machine %d is %s, not %s", ErrBadTransition, id, m.state, from)
	}
	m.state = to
	p.version++
	if p.journal.enabled() {
		p.journal.append(durable.Event{Kind: kind, Machine: id, Slot: -1})
	}
	p.mu.Unlock()
	if redrain {
		return p.drain()
	}
	return nil
}

// Kill marks an up or drained machine down and re-queues its in-flight
// tasks at the FRONT of the backlog in slot order — they were admitted
// before anything still queued, and FIFO fairness survives the failure.
// It returns the number of tasks re-queued.
func (p *Placer) Kill(id int) (requeued int, err error) {
	p.mu.Lock()
	if id < 0 || id >= len(p.machines) {
		p.mu.Unlock()
		return 0, fmt.Errorf("%w: %d", ErrUnknownMachine, id)
	}
	m := &p.machines[id]
	if m.state == MachineDown {
		p.mu.Unlock()
		return 0, fmt.Errorf("%w: machine %d is already down", ErrBadTransition, id)
	}
	m.state = MachineDown
	var lost []string
	lostSlots := map[string]int{}
	for si := range m.slots {
		if tid := m.slots[si].taskID; tid != "" {
			lost = append(lost, tid)
			lostSlots[tid] = si
			m.slots[si] = slot{}
			p.placedCount--
		}
	}
	evicted := make([]*Placement, 0, len(lost))
	refs := make([]durable.TaskRef, 0, len(lost))
	for _, tid := range lost {
		rec := p.placements[tid]
		resetToQueuedLocked(rec)
		rec.Retries++
		evicted = append(evicted, rec.clone())
		refs = append(refs, taskRef(rec))
	}
	p.queue = append(lost, p.queue...)
	p.version++
	if p.journal.enabled() {
		p.journal.append(durable.Event{Kind: durable.EvKill, Machine: id, Slot: -1, Tasks: refs})
	}
	p.mu.Unlock()
	for _, rec := range evicted {
		p.tracer.evictRequeue(rec, id, lostSlots[rec.ID])
	}
	if err := p.drain(); err != nil {
		return len(lost), err
	}
	return len(lost), nil
}

// SlotView is the JSON shape of one VM in GET /v1/machines.
type SlotView struct {
	State string `json:"state"` // "free" | "busy"
	Task  string `json:"task,omitempty"`
	App   string `json:"app,omitempty"`
}

// MachineView is the JSON shape of one machine.
type MachineView struct {
	ID    int        `json:"id"`
	State string     `json:"state"` // "up" | "drained" | "down"
	Slots []SlotView `json:"slots"`
}

// Machines renders the inventory.
func (p *Placer) Machines() []MachineView {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]MachineView, len(p.machines))
	for i := range p.machines {
		mv := MachineView{ID: i, State: p.machines[i].state, Slots: make([]SlotView, SlotsPerMachine)}
		for j, s := range p.machines[i].slots {
			if s.taskID == "" {
				mv.Slots[j] = SlotView{State: "free"}
			} else {
				mv.Slots[j] = SlotView{State: "busy", Task: s.taskID, App: s.app}
			}
		}
		out[i] = mv
	}
	return out
}

// finishLocked appends id to the finished ring, evicting the oldest
// finished record beyond the cap. An evicted record takes its dedup
// entry with it — the idempotency window is exactly the retention window.
func (p *Placer) finishLocked(id string) {
	p.done = append(p.done, id)
	for len(p.done) > p.doneCap {
		old := p.done[0]
		if rec, ok := p.placements[old]; ok && rec.idem != "" {
			delete(p.dedup, rec.idem)
		}
		delete(p.placements, old)
		p.done = p.done[1:]
	}
}

// countsLocked summarizes the free pool the way the schedulers expect:
// an idle machine contributes two empty-category slots; a half-busy one
// contributes one slot in its occupant's category.
func (p *Placer) countsLocked() sched.Counts {
	counts := sched.Counts{}
	for i := range p.machines {
		if p.machines[i].state != MachineUp {
			continue // cordoned and dead machines offer no slots
		}
		s0, s1 := p.machines[i].slots[0], p.machines[i].slots[1]
		switch {
		case s0.taskID == "" && s1.taskID == "":
			counts[sched.EmptyCategory] += 2
		case s0.taskID == "":
			counts[s1.app]++
		case s1.taskID == "":
			counts[s0.app]++
		}
	}
	return counts
}

// schedPlan is one immutable scheduling input: the head of the backlog,
// the free-pool census and the load signal, stamped with the state
// version they were captured at. Scoring runs against it lock-free.
type schedPlan struct {
	version uint64
	view    ModelView
	ids     []string // queue prefix the batch was built from
	batch   []sched.Task
	counts  sched.Counts
	load    sched.Load
}

// planLocked evicts queue entries the current library cannot score, then
// builds the next scheduling input. ok is false when there is nothing to
// schedule (empty backlog or no free slots).
func (p *Placer) planLocked() (plan schedPlan, ok bool) {
	view := p.models.View()
	// Evict unknowable queue entries first (possible after a hot-swap to a
	// different census): fail loudly instead of wedging the queue head.
	kept := p.queue[:0]
	var failed []durable.Event
	for _, id := range p.queue {
		rec := p.placements[id]
		if view.Known[rec.App] {
			kept = append(kept, id)
			continue
		}
		rec.Status = StatusFailed
		rec.Error = fmt.Sprintf("application %q unknown to generation %d library", rec.App, view.Gen)
		p.finishLocked(id)
		p.version++
		if p.journal.enabled() {
			failed = append(failed, durable.Event{
				Kind: durable.EvFail, Task: id, Machine: -1, Slot: -1, Error: rec.Error,
			})
		}
	}
	p.queue = kept
	p.journal.append(failed...)

	if len(p.queue) == 0 || p.freeSlotsLocked() == 0 {
		return schedPlan{}, false
	}
	n := view.Scheduler.BatchSize()
	if n > len(p.queue) {
		n = len(p.queue)
	}
	ids := append([]string(nil), p.queue[:n]...)
	batch := make([]sched.Task, n)
	for i, id := range ids {
		batch[i] = sched.Task{ID: int64(i), App: p.placements[id].App}
	}
	// TotalSlots reflects schedulable capacity: lost machines shrink the
	// utilization the adaptive policies see, exactly as in the simulator.
	available, _ := p.capacityLocked()
	return schedPlan{
		version: p.version,
		view:    view,
		ids:     ids,
		batch:   batch,
		counts:  p.countsLocked(),
		load:    sched.Load{TotalSlots: available, Queued: len(p.queue)},
	}, true
}

// commitLocked binds a scheduling pass's decisions to concrete slots. It
// must be called with the version check already passed (or while the plan
// was built and committed under one continuous lock hold): the queue
// prefix still matches plan.ids exactly. done reports whether draining
// should stop (nothing placed, or the cluster filled mid-batch).
func (p *Placer) commitLocked(plan schedPlan, placements []sched.Placement) (done bool, err error) {
	if len(placements) == 0 {
		return true, nil
	}
	placedIDs := map[int64]bool{}
	var placedEvs []durable.Event
	for _, pl := range placements {
		id := plan.ids[pl.Task.ID]
		rec := p.placements[id]
		if err := p.executeLocked(rec, pl.Category, plan.view); err != nil {
			return true, err
		}
		placedIDs[pl.Task.ID] = true
		if p.journal.enabled() {
			placedEvs = append(placedEvs, placeEvent(rec))
		}
	}
	// One pass's placements journal as one group: one fsync per commit.
	p.journal.append(placedEvs...)
	kept := p.queue[:0]
	for i, id := range p.queue {
		if i >= len(plan.ids) || !placedIDs[int64(i)] {
			kept = append(kept, id)
		}
	}
	p.queue = kept
	p.version++
	return len(placements) < len(plan.batch), nil
}

// optimisticRetries bounds how many stale-snapshot misses a draining pass
// tolerates before falling back to scheduling under the lock.
const optimisticRetries = 3

// drain runs the scheduler over the backlog until it stops placing.
// Scoring — the expensive part of a pass — runs outside the placer lock
// against an immutable snapshot; the commit re-takes the lock and applies
// the decisions only if the state version still matches. A stale snapshot
// (another submit, completion or lifecycle op landed in between) is
// recomputed; after optimisticRetries misses the pass schedules under the
// lock, which cannot miss.
func (p *Placer) drain() error {
	misses := 0
	for {
		t0 := p.clock.Now()
		p.mu.Lock()
		plan, ok := p.planLocked()
		if !ok {
			p.mu.Unlock()
			return nil
		}
		if misses >= optimisticRetries {
			// Contention fallback: plan, score and commit under one hold.
			p.tracer.planOutcome("plan_fallback", len(plan.batch))
			s0 := p.clock.Now()
			placements, err := plan.view.Scheduler.Schedule(plan.batch, plan.counts, plan.load)
			p.tracer.score(len(plan.batch), len(placements), p.clock.Since(s0))
			if err != nil {
				p.mu.Unlock()
				return fmt.Errorf("serve: scheduling: %w", err)
			}
			done, err := p.commitLocked(plan, placements)
			p.mu.Unlock()
			p.tracer.batchPass(len(plan.batch), len(placements), p.clock.Since(t0))
			if err != nil || done {
				return err
			}
			misses = 0
			continue
		}
		p.mu.Unlock()

		s0 := p.clock.Now()
		placements, err := plan.view.Scheduler.Schedule(plan.batch, plan.counts, plan.load)
		p.tracer.score(len(plan.batch), len(placements), p.clock.Since(s0))
		if err != nil {
			return fmt.Errorf("serve: scheduling: %w", err)
		}

		p.mu.Lock()
		if p.version != plan.version {
			p.mu.Unlock()
			p.tracer.planOutcome("plan_retry", len(plan.batch))
			misses++
			continue
		}
		done, err := p.commitLocked(plan, placements)
		p.mu.Unlock()
		p.tracer.planOutcome("plan_commit", len(plan.batch))
		p.tracer.batchPass(len(plan.batch), len(placements), p.clock.Since(t0))
		if err != nil || done {
			return err
		}
		misses = 0
	}
}

// executeLocked binds a scheduling decision to a concrete (machine, slot).
func (p *Placer) executeLocked(rec *Placement, category string, view ModelView) error {
	mi, si := p.findSlotLocked(category)
	if mi < 0 {
		return fmt.Errorf("serve: scheduler chose category %q but no matching slot is free", category)
	}
	other := p.machines[mi].slots[1-si]
	rec.Status = StatusPlaced
	rec.Machine = mi
	rec.Slot = si
	rec.Neighbour = other.app
	rec.Generation = view.Gen
	// Forecast this co-location for the completion-time drift check. The
	// prediction is telemetry: a failure here (cannot happen for a known
	// pair) must not undo a valid placement.
	if rt, err := view.Pred.PredictRuntime(rec.App, other.app); err == nil {
		rec.PredictedRuntime = rt
	}
	if io, err := view.Pred.PredictIOPS(rec.App, other.app); err == nil {
		rec.PredictedIOPS = io
	}
	if other.app != "" {
		if f, err := view.Lib.Features(other.app); err == nil {
			rec.bg = append([]float64(nil), f...)
		}
	} else {
		rec.bg = make([]float64, model.NumFeatures)
	}
	p.machines[mi].slots[si] = slot{taskID: rec.ID, app: rec.App}
	p.placedCount++
	p.tracer.place(rec)
	return nil
}

// findSlotLocked picks the lowest-indexed free slot matching the category:
// AnyCategory takes the first free VM, EmptyCategory a fully idle machine,
// and an application category a half-busy machine whose occupant runs it.
func (p *Placer) findSlotLocked(category string) (mi, si int) {
	for i := range p.machines {
		if p.machines[i].state != MachineUp {
			continue
		}
		s0free := p.machines[i].slots[0].taskID == ""
		s1free := p.machines[i].slots[1].taskID == ""
		switch category {
		case sched.AnyCategory:
			if s0free {
				return i, 0
			}
			if s1free {
				return i, 1
			}
		case sched.EmptyCategory:
			if s0free && s1free {
				return i, 0
			}
		default:
			if s0free != s1free { // exactly one free
				occ := p.machines[i].slots[0]
				free := 1
				if s0free {
					occ = p.machines[i].slots[1]
					free = 0
				}
				if occ.app == category {
					return i, free
				}
			}
		}
	}
	return -1, -1
}

// CheckInvariants validates the placer's bookkeeping: slots and placement
// records must agree exactly, the queue must hold only queued records, and
// the placed count must match the busy-slot census. Tests call it after
// concurrent hammering; any violation is a serving-layer bug.
func (p *Placer) CheckInvariants() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	busy := 0
	for i := range p.machines {
		switch p.machines[i].state {
		case MachineUp, MachineDrained, MachineDown:
		default:
			return fmt.Errorf("serve: machine %d in unknown state %q", i, p.machines[i].state)
		}
		for j, s := range p.machines[i].slots {
			if s.taskID == "" {
				continue
			}
			// A dead machine must have been fully evacuated by Kill.
			if p.machines[i].state == MachineDown {
				return fmt.Errorf("serve: down machine %d still holds task %q in slot %d", i, s.taskID, j)
			}
			busy++
			rec, ok := p.placements[s.taskID]
			if !ok {
				return fmt.Errorf("serve: slot %d/%d holds unknown task %q", i, j, s.taskID)
			}
			if rec.Status != StatusPlaced || rec.Machine != i || rec.Slot != j || rec.App != s.app {
				return fmt.Errorf("serve: slot %d/%d disagrees with record %+v", i, j, rec)
			}
		}
	}
	if busy != p.placedCount {
		return fmt.Errorf("serve: placedCount %d but %d busy slots", p.placedCount, busy)
	}
	placed := 0
	for _, rec := range p.placements {
		if rec.Status == StatusPlaced {
			placed++
			if rec.Machine < 0 || rec.Machine >= len(p.machines) ||
				p.machines[rec.Machine].slots[rec.Slot].taskID != rec.ID {
				return fmt.Errorf("serve: placed record %q not on its slot", rec.ID)
			}
		}
	}
	if placed != busy {
		return fmt.Errorf("serve: %d placed records but %d busy slots", placed, busy)
	}
	for _, id := range p.queue {
		rec, ok := p.placements[id]
		if !ok || rec.Status != StatusQueued {
			return fmt.Errorf("serve: queue entry %q not a queued record", id)
		}
	}
	return nil
}
