package serve

import (
	"math/rand"
	"testing"

	"tracon/internal/model"
)

// The acceptance bar for the prediction cache: for every model family,
// cached answers equal uncached answers bit-for-bit across randomized
// query mixes — the cache may only change latency, never a prediction.
func TestCachedPredictionsMatchUncached(t *testing.T) {
	for _, k := range []model.Kind{model.WMM, model.LM, model.NLM, model.Forest} {
		t.Run(k.String(), func(t *testing.T) {
			lib := testLibrary(t, k)
			cp, err := NewCachingPredictor(lib, NewPredCache(0), 1)
			if err != nil {
				t.Fatal(err)
			}
			apps := lib.Apps()
			corunners := append([]string{""}, apps...)
			rng := rand.New(rand.NewSource(42))
			type query struct {
				op               predOp
				target, corunner string
			}
			queries := make([]query, 200)
			for i := range queries {
				queries[i] = query{
					op:       predOp(rng.Intn(4)),
					target:   apps[rng.Intn(len(apps))],
					corunner: corunners[rng.Intn(len(corunners))],
				}
			}
			ask := func(p model.Predictor, q query) float64 {
				var v float64
				var err error
				switch q.op {
				case opRuntime:
					v, err = p.PredictRuntime(q.target, q.corunner)
				case opIOPS:
					v, err = p.PredictIOPS(q.target, q.corunner)
				case opSoloRuntime:
					v, err = p.SoloRuntime(q.target)
				default:
					v, err = p.SoloIOPS(q.target)
				}
				if err != nil {
					t.Fatalf("%v(%s,%s): %v", q.op, q.target, q.corunner, err)
				}
				return v
			}
			// Two passes: the first fills, the second must be served from
			// cache — and both must equal the uncached reference exactly.
			for pass := 0; pass < 2; pass++ {
				for _, q := range queries {
					if got, want := ask(cp, q), ask(lib, q); got != want {
						t.Fatalf("pass %d: cached %v != uncached %v for %+v", pass, got, want, q)
					}
				}
			}
			st := cp.Cache().Stats()
			if st.Hits == 0 {
				t.Fatal("no cache hits across repeated identical queries")
			}
			if st.Evictions != 0 {
				t.Fatalf("unexpected evictions at default cap: %+v", st)
			}
		})
	}
}

// Unknown names bypass the cache and surface the library's typed errors.
func TestCachePassesThroughUnknownApps(t *testing.T) {
	lib := testLibrary(t, model.LM)
	cp, err := NewCachingPredictor(lib, NewPredCache(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.PredictRuntime("nosuch", ""); err == nil {
		t.Fatal("unknown target accepted")
	}
	if _, err := cp.PredictRuntime(lib.Apps()[0], "nosuch"); err == nil {
		t.Fatal("unknown corunner accepted")
	}
	if n := cp.Cache().Len(); n != 0 {
		t.Fatalf("error paths populated the cache: %d entries", n)
	}
}

// Under a tiny capacity the cache must stay bounded, evict, and keep
// returning correct values for whatever is or is not resident.
func TestCacheEvictionBound(t *testing.T) {
	lib := testLibrary(t, model.NLM)
	const capPerShard = 2
	cache := NewPredCache(capPerShard)
	cp, err := NewCachingPredictor(lib, cache, 1)
	if err != nil {
		t.Fatal(err)
	}
	apps := lib.Apps()
	corunners := append([]string{""}, apps...)
	// 8 apps × 9 corunners × 2 ops = 144 distinct keys ≫ 16 shards × 2.
	for _, a := range apps {
		for _, c := range corunners {
			if _, err := cp.PredictRuntime(a, c); err != nil {
				t.Fatal(err)
			}
			if _, err := cp.PredictIOPS(a, c); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n, max := cache.Len(), capPerShard*cacheShards; n > max {
		t.Fatalf("cache holds %d entries, bound is %d", n, max)
	}
	if cache.Stats().Evictions == 0 {
		t.Fatal("no evictions despite exceeding capacity")
	}
	// Post-eviction correctness: every value still matches the reference,
	// whether it is recomputed or resident.
	for _, a := range apps {
		for _, c := range corunners {
			got, err := cp.PredictRuntime(a, c)
			if err != nil {
				t.Fatal(err)
			}
			want, err := lib.PredictRuntime(a, c)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("post-eviction divergence for (%s,%s)", a, c)
			}
		}
	}
}

// Distinct generations must never share entries, even for byte-identical
// feature vectors (a retrain can change the model without changing the
// app's characteristics).
func TestCacheGenerationsDoNotCollide(t *testing.T) {
	lib := testLibrary(t, model.NLM)
	cache := NewPredCache(0)
	cp1, err := NewCachingPredictor(lib, cache, 1)
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := NewCachingPredictor(lib, cache, 2)
	if err != nil {
		t.Fatal(err)
	}
	app := lib.Apps()[0]
	if _, err := cp1.PredictRuntime(app, ""); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	if _, err := cp2.PredictRuntime(app, ""); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Hits != before.Hits {
		t.Fatal("generation 2 hit generation 1's entry")
	}
	if after.Entries != before.Entries+1 {
		t.Fatalf("expected a fresh entry per generation: %+v vs %+v", before, after)
	}
}

// The placement decisions of a cached server must be identical to an
// uncached one fed the same request sequence — the cache is a pure
// memoization layer.
func TestCacheDoesNotChangePlacementDecisions(t *testing.T) {
	lib := testLibrary(t, model.NLM)
	mk := func(disable bool) *Server {
		s, err := New(lib, Config{Machines: 4, Policy: "mios", DisableCache: disable})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cached, uncached := mk(false), mk(true)
	apps := lib.Apps()
	rng := rand.New(rand.NewSource(7))
	var placedC, placedU []string
	for i := 0; i < 120; i++ {
		app := apps[rng.Intn(len(apps))]
		rc, err1 := cached.Placer().Submit(app)
		ru, err2 := uncached.Placer().Submit(app)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if rc.Status != ru.Status || rc.Machine != ru.Machine || rc.Slot != ru.Slot ||
			rc.Neighbour != ru.Neighbour || rc.PredictedRuntime != ru.PredictedRuntime {
			t.Fatalf("decision %d diverged: cached %+v vs uncached %+v", i, rc, ru)
		}
		if rc.Status == StatusPlaced {
			placedC = append(placedC, rc.ID)
			placedU = append(placedU, ru.ID)
		}
		// Periodically free the oldest placement on both to cycle slots.
		if len(placedC) > 5 {
			if _, err := cached.Placer().Complete(placedC[0]); err != nil {
				t.Fatal(err)
			}
			if _, err := uncached.Placer().Complete(placedU[0]); err != nil {
				t.Fatal(err)
			}
			placedC, placedU = placedC[1:], placedU[1:]
		}
	}
	if err := cached.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := uncached.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if cached.cache.Stats().Hits == 0 {
		t.Fatal("cached server never hit its cache")
	}
}

// benchQueries builds a fixed query mix over the library's app pairs.
func benchQueries(lib *model.Library) [][2]string {
	apps := lib.Apps()
	var qs [][2]string
	for _, a := range apps {
		for _, c := range append([]string{""}, apps...) {
			qs = append(qs, [2]string{a, c})
		}
	}
	return qs
}

func benchmarkPredict(b *testing.B, p model.Predictor, qs [][2]string) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := p.PredictRuntime(q[0], q[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// The measured hit-path speedup of the acceptance criteria: cached
// prediction vs full regression evaluation, per family.
func BenchmarkPredictUncachedNLM(b *testing.B) {
	lib := testLibrary(b, model.NLM)
	benchmarkPredict(b, lib, benchQueries(lib))
}

func BenchmarkPredictCachedNLM(b *testing.B) {
	lib := testLibrary(b, model.NLM)
	cp, err := NewCachingPredictor(lib, NewPredCache(0), 1)
	if err != nil {
		b.Fatal(err)
	}
	qs := benchQueries(lib)
	for _, q := range qs { // warm
		if _, err := cp.PredictRuntime(q[0], q[1]); err != nil {
			b.Fatal(err)
		}
	}
	benchmarkPredict(b, cp, qs)
}

func BenchmarkPredictUncachedForest(b *testing.B) {
	lib := testLibrary(b, model.Forest)
	benchmarkPredict(b, lib, benchQueries(lib))
}

func BenchmarkPredictCachedForest(b *testing.B) {
	lib := testLibrary(b, model.Forest)
	cp, err := NewCachingPredictor(lib, NewPredCache(0), 1)
	if err != nil {
		b.Fatal(err)
	}
	qs := benchQueries(lib)
	for _, q := range qs {
		if _, err := cp.PredictRuntime(q[0], q[1]); err != nil {
			b.Fatal(err)
		}
	}
	benchmarkPredict(b, cp, qs)
}
