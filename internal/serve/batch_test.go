package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tracon/internal/model"
	"tracon/internal/obs"
)

// TestSubmitBatchOutcomes drives the placer's batch path directly: a batch
// mixing known and unknown applications gets positional outcomes, admitted
// tasks fill free slots then queue in request order, and tasks beyond the
// admission budget are shed individually without failing the batch.
func TestSubmitBatchOutcomes(t *testing.T) {
	// 2 machines = 4 slots; MaxQueue 3 so the bound bites within one batch.
	s := newTestServer(t, model.NLM, Config{Machines: 2, Policy: "mibs", QueueLen: 8, MaxQueue: 3})
	p := s.Placer()
	apps := testLibrary(t, model.NLM).Apps()

	// 9 tasks against budget bound(3) + free(4) = 7, with an unknown app in
	// the middle: expect 4 placed, 3 queued, 1 unknown-app failure, 1 shed.
	batch := []string{apps[0], apps[1], "no-such-app", apps[2], apps[0], apps[1], apps[2], apps[0], apps[1]}
	outcomes, err := p.SubmitBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(batch) {
		t.Fatalf("got %d outcomes for %d tasks", len(outcomes), len(batch))
	}
	if !errors.Is(outcomes[2].Err, model.ErrUnknownApp) {
		t.Fatalf("unknown app outcome: %+v", outcomes[2])
	}
	var placed, queued, shed int
	var queuedIDs []string
	for i, o := range outcomes {
		if i == 2 {
			continue
		}
		switch {
		case errors.Is(o.Err, ErrQueueFull):
			shed++
		case o.Err != nil:
			t.Fatalf("task %d: %v", i, o.Err)
		case o.Placement.Status == StatusPlaced:
			placed++
		case o.Placement.Status == StatusQueued:
			queued++
			queuedIDs = append(queuedIDs, o.Placement.ID)
		default:
			t.Fatalf("task %d in state %q", i, o.Placement.Status)
		}
	}
	if placed != 4 || queued != 3 || shed != 1 {
		t.Fatalf("placed/queued/shed = %d/%d/%d, want 4/3/1", placed, queued, shed)
	}
	// Only the tail of the batch is shed: the budget admits in order.
	if !errors.Is(outcomes[len(outcomes)-1].Err, ErrQueueFull) {
		t.Fatalf("expected the last task to be shed, got %+v", outcomes[len(outcomes)-1])
	}
	// The backlog preserves batch order for the admitted-but-queued tasks.
	snap := p.Snapshot()
	if snap.QueueDepth != 3 || snap.FreeSlots != 0 {
		t.Fatalf("snapshot after batch: %+v", snap)
	}
	p.mu.Lock()
	gotQueue := append([]string(nil), p.queue...)
	p.mu.Unlock()
	for i, id := range queuedIDs {
		if gotQueue[i] != id {
			t.Fatalf("queue order %v, want prefix %v", gotQueue, queuedIDs)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAdmissionBound is the -race proof for the atomic admission
// fix: singleton and batch submitters hammer a full cluster concurrently
// while a sampler watches the backlog, and at no sampled instant does the
// queue depth exceed the scaled bound plus free capacity. With the old
// check-then-enqueue TOCTOU, concurrent submits raced past the bound.
func TestConcurrentAdmissionBound(t *testing.T) {
	for _, tc := range []struct {
		name  string
		kill  int // machines to kill before the hammer (scales the bound)
		bound int
	}{
		{name: "full capacity", kill: 0, bound: 8},
		{name: "half capacity", kill: 1, bound: 4}, // 8 * 2/4
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestServer(t, model.NLM, Config{Machines: 2, Policy: "mios", MaxQueue: 8})
			p := s.Placer()
			apps := testLibrary(t, model.NLM).Apps()
			for i := 0; i < tc.kill; i++ {
				if _, err := p.Kill(i); err != nil {
					t.Fatal(err)
				}
			}
			// Saturate every schedulable slot so free-slot absorption is zero
			// and the instantaneous backlog bound applies directly.
			free := p.FreeSlots()
			for i := 0; i < free; i++ {
				rec, err := p.Submit(apps[i%len(apps)])
				if err != nil || rec.Status != StatusPlaced {
					t.Fatalf("fill %d: %+v, %v", i, rec, err)
				}
			}

			var admitted, rejected int64
			var mu sync.Mutex
			stop := make(chan struct{})
			var sampler sync.WaitGroup
			sampler.Add(1)
			go func() {
				defer sampler.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					snap := p.Snapshot()
					if snap.QueueDepth > tc.bound+snap.FreeSlots {
						t.Errorf("backlog %d exceeds bound %d (+%d free)",
							snap.QueueDepth, tc.bound, snap.FreeSlots)
						return
					}
				}
			}()

			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(2)
				go func(g int) { // singleton submitters
					defer wg.Done()
					for i := 0; i < 8; i++ {
						_, err := p.Submit(apps[(g+i)%len(apps)])
						mu.Lock()
						if errors.Is(err, ErrQueueFull) {
							rejected++
						} else if err == nil {
							admitted++
						}
						mu.Unlock()
						if err != nil && !errors.Is(err, ErrQueueFull) {
							t.Errorf("submit: %v", err)
						}
					}
				}(g)
				go func(g int) { // batch submitters
					defer wg.Done()
					for i := 0; i < 4; i++ {
						batch := []string{apps[g%len(apps)], apps[(g+1)%len(apps)], apps[(g+2)%len(apps)]}
						outcomes, err := p.SubmitBatch(batch)
						if err != nil {
							t.Errorf("batch: %v", err)
							return
						}
						mu.Lock()
						for _, o := range outcomes {
							if errors.Is(o.Err, ErrQueueFull) {
								rejected++
							} else if o.Err == nil {
								admitted++
							}
						}
						mu.Unlock()
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			sampler.Wait()

			// The hammer far oversubscribes the bound, so the backlog must
			// have filled exactly to it, and every admit+reject is accounted.
			if int(admitted) != tc.bound {
				t.Fatalf("admitted %d, want exactly the bound %d", admitted, tc.bound)
			}
			total := int64(4 * (8 + 4*3))
			if admitted+rejected != total {
				t.Fatalf("admitted %d + rejected %d != %d submitted", admitted, rejected, total)
			}
			if depth := p.QueueDepth(); depth != tc.bound {
				t.Fatalf("final backlog %d, want %d", depth, tc.bound)
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHTTPSubmitBatch exercises POST /v1/tasks:batch end to end: per-task
// outcomes, aggregate counts, the Retry-After hint when the bound sheds
// part of the batch, and the batch histograms appearing in /metrics.
func TestHTTPSubmitBatch(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 2, Policy: "mibs", QueueLen: 8, MaxQueue: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	apps := testLibrary(t, model.NLM).Apps()

	// 4 slots + bound 2 = budget 6; a batch of 8 sheds its last two tasks.
	var req BatchRequest
	for i := 0; i < 8; i++ {
		req.Tasks = append(req.Tasks, BatchTask{App: apps[i%len(apps)]})
	}
	body, _ := json.Marshal(req)
	httpResp, err := http.Post(ts.URL+"/v1/tasks:batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", httpResp.StatusCode)
	}
	var resp BatchResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Placed != 4 || resp.Queued != 2 || resp.Rejected != 2 || resp.Failed != 0 {
		t.Fatalf("counts placed/queued/rejected/failed = %d/%d/%d/%d, want 4/2/2/0",
			resp.Placed, resp.Queued, resp.Rejected, resp.Failed)
	}
	if len(resp.Results) != 8 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	for i, r := range resp.Results[:6] {
		if r.Placement == nil || r.Rejected {
			t.Fatalf("result %d: %+v", i, r)
		}
	}
	for i, r := range resp.Results[6:] {
		if !r.Rejected || r.Placement != nil {
			t.Fatalf("shed result %d: %+v", 6+i, r)
		}
	}
	if resp.RetryAfterS != 1 {
		t.Fatalf("RetryAfterS = %d, want 1 at full capacity", resp.RetryAfterS)
	}
	if got := httpResp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After header %q", got)
	}
	if got := s.admission.Rejected(); got != 2 {
		t.Fatalf("rejection counter %d, want 2", got)
	}

	// The batch histograms surface in /metrics with the pass recorded.
	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metricsResp.Body.Close()
	var points []obs.MetricPoint
	if err := json.NewDecoder(metricsResp.Body).Decode(&points); err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.MetricPoint{}
	for _, pt := range points {
		byName[pt.Name] = pt
	}
	size, ok := byName["serve.batch_size"]
	if !ok || size.Hist == nil || size.Hist.N != 1 || size.Hist.Sum != 8 {
		t.Fatalf("serve.batch_size: %+v", size)
	}
	lat, ok := byName["serve.batch_decision_seconds"]
	if !ok || lat.Hist == nil || lat.Hist.N != 1 {
		t.Fatalf("serve.batch_decision_seconds: %+v", lat)
	}
	if rej, ok := byName["serve.rejected"]; !ok || rej.Kind != "gauge" || rej.Value != 2 {
		t.Fatalf("serve.rejected: %+v", byName["serve.rejected"])
	}
}

// TestHTTPSubmitBatchValidation pins the 400 paths: empty batch, oversized
// batch, and a task with no application name.
func TestHTTPSubmitBatchValidation(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 1, BatchMax: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	apps := testLibrary(t, model.NLM).Apps()

	for _, tc := range []struct {
		name string
		body string
	}{
		{"empty batch", `{"tasks":[]}`},
		{"oversized batch", fmt.Sprintf(`{"tasks":[%s]}`, strings.Repeat(`{"app":"x"},`, 4)+`{"app":"x"}`)},
		{"missing app", fmt.Sprintf(`{"tasks":[{"app":%q},{}]}`, apps[0])},
		{"malformed json", `{"tasks":`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/tasks:batch", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
	// Validation failures must not count as submissions or rejections.
	if got := s.admission.Rejected(); got != 0 {
		t.Fatalf("rejection counter %d after validation failures", got)
	}
}

// TestCoalescerGroupsSubmissions checks the micro-batcher: concurrent
// singleton submissions inside one window flush as a single queue-aware
// scheduling pass, each waiter gets its own outcome, and the batch-size
// histogram accounts every task exactly once.
func TestCoalescerGroupsSubmissions(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{
		Machines: 3, Policy: "mibs", QueueLen: 8,
		CoalesceWindow: 20 * time.Millisecond, BatchMax: 16,
	})
	if s.coalescer == nil {
		t.Fatal("CoalesceWindow > 0 must wire a coalescer")
	}
	apps := testLibrary(t, model.NLM).Apps()

	const n = 6 // exactly the slot count: every task places
	var wg sync.WaitGroup
	recs := make([]*Placement, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i], errs[i] = s.coalescer.Submit(apps[i%len(apps)])
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if recs[i].Status != StatusPlaced {
			t.Fatalf("submit %d: status %q, want placed onto the empty cluster", i, recs[i].Status)
		}
	}
	size := s.reg.Histogram("serve.batch_size", obs.BatchSizeBuckets()).Snapshot()
	if size.Sum != n {
		t.Fatalf("batch-size histogram accounted %v tasks, want %d", size.Sum, n)
	}
	if size.N < 1 || size.N > n {
		t.Fatalf("batch-size histogram N = %d", size.N)
	}
	if w := s.reg.Gauge("serve.coalesce_waiting").Value(); w != 0 {
		t.Fatalf("coalesce_waiting gauge %v after all flushes", w)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescerFlushesEarlyAtMaxBatch checks the size trigger: a group
// reaching BatchMax flushes without waiting out the window.
func TestCoalescerFlushesEarlyAtMaxBatch(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{
		Machines: 2, Policy: "mibs", QueueLen: 8,
		CoalesceWindow: 10 * time.Second, // far beyond the test's patience
		BatchMax:       2,
	})
	apps := testLibrary(t, model.NLM).Apps()

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := s.coalescer.Submit(apps[i%len(apps)])
			done <- err
		}(i)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("size-triggered flush did not happen before the window")
		}
	}
}

// TestSlowBodyDoesNotPinToken proves the in-flight fix: a client trickling
// its request body must not hold one of the admission tokens — the token
// covers only the placement decision, which starts after the body is read.
func TestSlowBodyDoesNotPinToken(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 1, MaxInflight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	apps := testLibrary(t, model.NLM).Apps()

	// Open a submission whose body never finishes arriving: the handler
	// blocks inside the JSON decode.
	pr, pw := io.Pipe()
	slowDone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/tasks", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		slowDone <- err
	}()
	if _, err := pw.Write([]byte(`{"app":`)); err != nil { // header sent, body stuck mid-JSON
		t.Fatal(err)
	}

	// While the slow request is wedged in its decode, the single token is
	// free and a well-behaved submission goes straight through.
	deadline := time.After(5 * time.Second)
	for s.admission.InFlight() != 0 {
		select {
		case <-deadline:
			t.Fatalf("in-flight token held during body decode: %d", s.admission.InFlight())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/tasks", "application/json",
		strings.NewReader(fmt.Sprintf(`{"app":%q}`, apps[0])))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast submission got %d while a slow body streams", resp.StatusCode)
	}

	// Unstick the slow request and let it finish (its truncated body is a
	// 400, not a hang).
	if _, err := pw.Write([]byte(fmt.Sprintf("%q}", apps[0]))); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
}

// TestRetryAfterHint pins the backoff hint's rounding and cap boundaries.
func TestRetryAfterHint(t *testing.T) {
	for _, tc := range []struct {
		available, total, want int
	}{
		{6, 6, 1},    // full capacity: immediate retry
		{4, 6, 2},    // ceil(6/4)
		{2, 6, 3},    // exact division
		{1, 6, 6},    //
		{1, 30, 30},  // lands exactly on the cap
		{1, 31, 30},  // capped
		{0, 6, 30},   // zero capacity hints the cap, not infinity
		{-1, 6, 30},  // defensive: negative capacity behaves like zero
		{5, 100, 20}, // ceil(100/5)
	} {
		if got := retryAfter(tc.available, tc.total); got != tc.want {
			t.Errorf("retryAfter(%d, %d) = %d, want %d", tc.available, tc.total, got, tc.want)
		}
	}
}

// TestScaledBoundEdges pins the bound-resolution corners the admission
// sweep fixed: available==total returns the configured bound, a bound that
// would scale below one clamps to one, a disabled bound stays disabled at
// any positive capacity but still cuts off at zero capacity.
func TestScaledBoundEdges(t *testing.T) {
	for _, tc := range []struct {
		name             string
		maxQueue         int
		available, total int
		want             int
	}{
		{"full capacity keeps the bound", 24, 6, 6, 24},
		{"computed bound below one clamps to one", 4, 1, 6, 1},
		{"proportional scaling", 24, 2, 6, 8},
		{"disabled bound stays disabled", -1, 3, 6, -1},
		{"disabled bound at zero capacity cuts off", -1, 0, 6, 0},
		{"bounded at zero capacity cuts off", 24, 0, 6, 0},
		{"zero total with capacity is unbounded", 24, 2, 0, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAdmission(1, tc.maxQueue)
			if got := a.ScaledBound(tc.available, tc.total); got != tc.want {
				t.Fatalf("ScaledBound(%d, %d) with maxQueue %d = %d, want %d",
					tc.available, tc.total, tc.maxQueue, got, tc.want)
			}
		})
	}
}

// TestSnapshotConsistency checks the single-lock snapshot against the
// individual accessors in a quiescent placer.
func TestSnapshotConsistency(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 3, Policy: "mios", MaxQueue: -1})
	p := s.Placer()
	apps := testLibrary(t, model.NLM).Apps()
	for i := 0; i < 8; i++ { // 6 place, 2 queue
		if _, err := p.Submit(apps[i%len(apps)]); err != nil {
			t.Fatal(err)
		}
	}
	snap := p.Snapshot()
	available, total := p.Capacity()
	if snap.QueueDepth != p.QueueDepth() || snap.FreeSlots != p.FreeSlots() ||
		snap.Available != available || snap.Total != total {
		t.Fatalf("snapshot %+v disagrees with accessors (%d queued, %d free, %d/%d capacity)",
			snap, p.QueueDepth(), p.FreeSlots(), available, total)
	}
	if snap.QueueDepth != 2 || snap.FreeSlots != 0 || snap.Available != 6 || snap.Total != 6 {
		t.Fatalf("snapshot %+v, want 2 queued on a full 6-slot cluster", snap)
	}
}
