package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tracon/internal/model"
	"tracon/internal/monitor"
)

// httpJSON issues one request and decodes the JSON response into out.
func httpJSON(t testing.TB, method, url string, body any, out any) int {
	t.Helper()
	var r io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		r = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPPlacementLifecycle(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	app := testLibrary(t, model.NLM).Apps()[0]

	var rec Placement
	if code := httpJSON(t, "POST", ts.URL+"/v1/tasks", submitRequest{App: app}, &rec); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	if rec.Status != StatusPlaced || rec.App != app || rec.ID == "" {
		t.Fatalf("submit response: %+v", rec)
	}
	if rec.PredictedRuntime <= 0 {
		t.Fatalf("no forecast in response: %+v", rec)
	}

	var got Placement
	if code := httpJSON(t, "GET", ts.URL+"/v1/placements/"+rec.ID, nil, &got); code != http.StatusOK {
		t.Fatalf("get: status %d", code)
	}
	if got.ID != rec.ID || got.Status != StatusPlaced {
		t.Fatalf("get response: %+v", got)
	}

	var machines []MachineView
	if code := httpJSON(t, "GET", ts.URL+"/v1/machines", nil, &machines); code != http.StatusOK {
		t.Fatalf("machines: status %d", code)
	}
	busy := 0
	for _, m := range machines {
		for _, sl := range m.Slots {
			if sl.State == "busy" {
				busy++
				if sl.Task != rec.ID || sl.App != app {
					t.Fatalf("busy slot disagrees: %+v", sl)
				}
			}
		}
	}
	if busy != 1 {
		t.Fatalf("%d busy slots, want 1", busy)
	}

	var done Placement
	obs := Observation{Runtime: rec.PredictedRuntime, IOPS: rec.PredictedIOPS}
	if code := httpJSON(t, "POST", ts.URL+"/v1/placements/"+rec.ID+"/complete", obs, &done); code != http.StatusOK {
		t.Fatalf("complete: status %d", code)
	}
	if done.Status != StatusCompleted {
		t.Fatalf("complete response: %+v", done)
	}

	// Error mappings on the same surface.
	if code := httpJSON(t, "GET", ts.URL+"/v1/placements/t-999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("get unknown: status %d", code)
	}
	if code := httpJSON(t, "POST", ts.URL+"/v1/placements/t-999/complete", nil, nil); code != http.StatusNotFound {
		t.Fatalf("complete unknown: status %d", code)
	}
	if code := httpJSON(t, "POST", ts.URL+"/v1/placements/"+rec.ID+"/complete", nil, nil); code != http.StatusConflict {
		t.Fatalf("double complete: status %d", code)
	}
	var errResp errorResponse
	if code := httpJSON(t, "POST", ts.URL+"/v1/tasks", submitRequest{App: "nosuch"}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("unknown app: status %d", code)
	}
	if !strings.Contains(errResp.Error, "nosuch") {
		t.Fatalf("unknown-app error does not name the app: %q", errResp.Error)
	}
	if code := httpJSON(t, "POST", ts.URL+"/v1/tasks", map[string]string{}, nil); code != http.StatusBadRequest {
		t.Fatalf("missing app: status %d", code)
	}

	var health map[string]any
	if code := httpJSON(t, "GET", ts.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz body: %+v", health)
	}
	var models modelsResponse
	if code := httpJSON(t, "GET", ts.URL+"/v1/models", nil, &models); code != http.StatusOK {
		t.Fatalf("models: status %d", code)
	}
	if models.Kind != "NLM" || models.Generation != 1 || models.Cache == nil {
		t.Fatalf("models body: %+v", models)
	}
	var metrics json.RawMessage
	if code := httpJSON(t, "GET", ts.URL+"/metrics", nil, &metrics); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if !bytes.Contains(metrics, []byte("serve.tasks_submitted")) {
		t.Fatalf("metrics snapshot missing serve counters: %s", metrics)
	}
	if resp, err := http.Get(ts.URL + "/debug/pprof/cmdline"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
}

func TestHTTPEmptyLibraryMapsTo503(t *testing.T) {
	s, err := New(model.NewLibrary(model.NLM), Config{Machines: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var errResp errorResponse
	if code := httpJSON(t, "POST", ts.URL+"/v1/tasks", submitRequest{App: "anything"}, &errResp); code != http.StatusServiceUnavailable {
		t.Fatalf("empty library: status %d (%+v)", code, errResp)
	}
}

func TestHTTPAdmissionBackpressure(t *testing.T) {
	// One machine, queue bound of one: the 3rd submission queues, the 4th
	// must be refused with 429 + Retry-After.
	s := newTestServer(t, model.NLM, Config{Machines: 1, MaxQueue: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	app := testLibrary(t, model.NLM).Apps()[0]

	for i := 0; i < 3; i++ {
		if code := httpJSON(t, "POST", ts.URL+"/v1/tasks", submitRequest{App: app}, nil); code != http.StatusOK {
			t.Fatalf("submission %d: status %d", i, code)
		}
	}
	buf, _ := json.Marshal(submitRequest{App: app})
	resp, err := http.Post(ts.URL+"/v1/tasks", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.admission.Rejected() == 0 {
		t.Fatal("rejection not counted")
	}
}

// The acceptance-criteria race test: at least 8 parallel submitters drive
// the HTTP surface while the model library is hot-swapped underneath them.
// Every request must succeed, no placement may be dropped or corrupted,
// and the final census must reconcile exactly. Run under -race.
func TestHotSwapUnderConcurrentSubmitters(t *testing.T) {
	lib := testLibrary(t, model.NLM)
	lib2 := testLibrary(t, model.LM) // same census, different family
	s, err := New(lib, Config{Machines: 8, MaxQueue: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	apps := lib.Apps()

	const (
		workers   = 8
		perWorker = 40
	)
	var (
		wg        sync.WaitGroup
		completed atomic.Int64
		failures  atomic.Int64
	)
	stopSwaps := make(chan struct{})
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		next := []*model.Library{lib2, lib}
		for i := 0; ; i++ {
			select {
			case <-stopSwaps:
				return
			default:
			}
			if err := s.ModelSet().Swap(next[i%2]); err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				app := apps[(w+i)%len(apps)]
				var rec Placement
				code := httpJSON(t, "POST", ts.URL+"/v1/tasks", submitRequest{App: app}, &rec)
				if code != http.StatusOK {
					failures.Add(1)
					t.Errorf("worker %d submit %d: status %d", w, i, code)
					return
				}
				// 8 workers × ≤1 outstanding each on 16 slots: every task
				// must be placed immediately, never queued.
				if rec.Status != StatusPlaced {
					failures.Add(1)
					t.Errorf("worker %d submit %d: status %q", w, i, rec.Status)
					return
				}
				obs := Observation{Runtime: rec.PredictedRuntime, IOPS: rec.PredictedIOPS}
				var done Placement
				code = httpJSON(t, "POST", ts.URL+"/v1/placements/"+rec.ID+"/complete", obs, &done)
				if code != http.StatusOK || done.Status != StatusCompleted {
					failures.Add(1)
					t.Errorf("worker %d complete %d: status %d (%+v)", w, i, code, done)
					return
				}
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stopSwaps)
	swapWG.Wait()
	s.Drain()

	if failures.Load() != 0 {
		t.Fatalf("%d request failures", failures.Load())
	}
	if got, want := completed.Load(), int64(workers*perWorker); got != want {
		t.Fatalf("completed %d of %d tasks", got, want)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := s.Placer().FreeSlots(); got != 8*SlotsPerMachine {
		t.Fatalf("%d free slots after full drain, want %d", got, 8*SlotsPerMachine)
	}
	if s.ModelSet().Swaps() == 0 {
		t.Fatal("no hot-swaps actually executed during the run")
	}
}

// Sustained prediction error on completions must fire the drift detector
// and hot-swap in a retrained library without operator involvement.
func TestDriftTriggersHotSwap(t *testing.T) {
	lib := testLibrary(t, model.NLM)
	var retrains atomic.Int64
	s, err := New(lib, Config{
		Machines: 2,
		Retrain: func(recent map[string][]model.Sample) (*model.Library, error) {
			retrains.Add(1)
			if len(recent) == 0 {
				return nil, fmt.Errorf("no observations handed to retrainer")
			}
			return lib, nil
		},
		Drift:       monitor.DriftConfig{Baseline: 10, Window: 5, MinMeanShift: 0.1},
		SyncRetrain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	app := lib.Apps()[0]

	// Feed one completion with a chosen observed/predicted ratio.
	feed := func(ratio float64) {
		var rec Placement
		if code := httpJSON(t, "POST", ts.URL+"/v1/tasks", submitRequest{App: app}, &rec); code != http.StatusOK {
			t.Fatalf("submit: %d", code)
		}
		obs := Observation{Runtime: rec.PredictedRuntime * ratio, IOPS: rec.PredictedIOPS}
		if code := httpJSON(t, "POST", ts.URL+"/v1/placements/"+rec.ID+"/complete", obs, nil); code != http.StatusOK {
			t.Fatalf("complete: %d", code)
		}
	}
	for i := 0; i < 10; i++ { // baseline: the model is accurate
		feed(1.0)
	}
	if s.ModelSet().Generation() != 1 {
		t.Fatal("swap fired during accurate baseline")
	}
	for i := 0; i < 6; i++ { // drift: reality is 2× the forecast
		feed(2.0)
	}
	if got := s.ModelSet().Generation(); got < 2 {
		t.Fatalf("generation %d after sustained drift, want >= 2", got)
	}
	if retrains.Load() == 0 || s.Swapper().DriftFires() == 0 {
		t.Fatalf("retrains=%d driftFires=%d", retrains.Load(), s.Swapper().DriftFires())
	}
	if s.Swapper().RetrainErrors() != 0 {
		t.Fatalf("retrain errors: %d", s.Swapper().RetrainErrors())
	}
	// The manual path keeps working after an automatic swap.
	var swapResp map[string]uint64
	if code := httpJSON(t, "POST", ts.URL+"/v1/models/swap", nil, &swapResp); code != http.StatusOK {
		t.Fatalf("manual swap: %d", code)
	}
	if swapResp["generation"] < 3 {
		t.Fatalf("manual swap response: %+v", swapResp)
	}
}
