package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tracon/internal/model"
	"tracon/internal/monitor"
	"tracon/internal/sched"
)

// ModelSet is the serving daemon's active model family: the trained
// library plus the scorer and scheduler built over it, swapped atomically
// under an RWMutex. Requests snapshot a View (read lock, pointer copies)
// and keep using it even if a swap lands mid-flight — the old generation's
// objects stay valid, so no request is ever dropped or served a torn
// half-old half-new model.
type ModelSet struct {
	policy    string
	queueLen  int
	objective sched.Objective
	cache     *PredCache // nil disables prediction caching

	mu        sync.RWMutex
	gen       uint64
	lib       *model.Library
	pred      model.Predictor
	scheduler sched.Scheduler
	known     map[string]bool

	swaps atomic.Uint64

	// onSwap fires after each completed hot-swap with the new generation
	// (the journal's gen_swap event). Set once before serving starts.
	onSwap func(gen uint64)
}

// ModelView is one generation's immutable serving surface.
type ModelView struct {
	Gen       uint64
	Lib       *model.Library
	Pred      model.Predictor
	Scheduler sched.Scheduler
	Known     map[string]bool
}

// NewModelSet builds the initial generation over lib. policy is one of
// "fifo", "mios", "mibs", "mix" (queueLen applies to the batch policies);
// cache may be nil to score without memoization.
func NewModelSet(lib *model.Library, policy string, queueLen int, objective sched.Objective, cache *PredCache) (*ModelSet, error) {
	ms := &ModelSet{
		policy:    policy,
		queueLen:  queueLen,
		objective: objective,
		cache:     cache,
	}
	if err := ms.install(lib, 1); err != nil {
		return nil, err
	}
	return ms, nil
}

// install builds generation gen's serving surface and publishes it.
func (ms *ModelSet) install(lib *model.Library, gen uint64) error {
	if lib == nil {
		return fmt.Errorf("serve: nil library")
	}
	var pred model.Predictor = lib
	if ms.cache != nil {
		cp, err := NewCachingPredictor(lib, ms.cache, gen)
		if err != nil {
			return err
		}
		pred = cp
	}
	scorer := sched.NewScorer(pred, ms.objective)
	scheduler, err := buildScheduler(ms.policy, ms.queueLen, scorer)
	if err != nil {
		return err
	}
	known := map[string]bool{}
	for _, a := range lib.Apps() {
		known[a] = true
	}
	ms.mu.Lock()
	ms.gen = gen
	ms.lib = lib
	ms.pred = pred
	ms.scheduler = scheduler
	ms.known = known
	ms.mu.Unlock()
	return nil
}

// Swap atomically replaces the served library with a retrained one. The
// expensive construction (caching predictor, scorer, scheduler) happens
// before the write lock is taken, so readers block only for the pointer
// flip.
func (ms *ModelSet) Swap(lib *model.Library) error {
	ms.mu.RLock()
	next := ms.gen + 1
	ms.mu.RUnlock()
	if err := ms.install(lib, next); err != nil {
		return err
	}
	ms.swaps.Add(1)
	if ms.onSwap != nil {
		ms.onSwap(next)
	}
	return nil
}

// OnSwap registers the post-swap hook. Must be called before the daemon
// starts serving (no lock guards the field against a concurrent Swap).
func (ms *ModelSet) OnSwap(fn func(gen uint64)) { ms.onSwap = fn }

// View snapshots the current generation.
func (ms *ModelSet) View() ModelView {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	return ModelView{
		Gen:       ms.gen,
		Lib:       ms.lib,
		Pred:      ms.pred,
		Scheduler: ms.scheduler,
		Known:     ms.known,
	}
}

// Generation returns the live generation number.
func (ms *ModelSet) Generation() uint64 {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	return ms.gen
}

// Swaps returns how many hot-swaps have been executed.
func (ms *ModelSet) Swaps() uint64 { return ms.swaps.Load() }

// Kind returns the served model family.
func (ms *ModelSet) Kind() model.Kind {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	return ms.lib.Kind
}

// buildScheduler constructs the named policy over a scorer.
func buildScheduler(policy string, queueLen int, scorer *sched.Scorer) (sched.Scheduler, error) {
	if queueLen <= 0 {
		queueLen = 4
	}
	switch policy {
	case "fifo":
		return sched.FIFO{}, nil
	case "", "mios":
		return &sched.MIOS{Scorer: scorer}, nil
	case "mibs":
		return &sched.MIBS{Scorer: scorer, QueueLen: queueLen}, nil
	case "mix":
		return &sched.MIX{Scorer: scorer, QueueLen: queueLen}, nil
	default:
		return nil, fmt.Errorf("serve: unknown policy %q", policy)
	}
}

// Retrainer produces a fresh library for a hot-swap. recent holds the
// bounded window of production observations per application, newest last;
// implementations typically fold them into the original training profile
// and refit the family.
type Retrainer func(recent map[string][]model.Sample) (*model.Library, error)

// DefaultSampleCap bounds the per-application observation window the swap
// manager hands to the retrainer.
const DefaultSampleCap = 256

// SwapManager wires completion observations to drift detection and model
// hot-swap: every completion's relative runtime prediction error feeds a
// monitor.Detector; when it fires, the retrainer runs (single-flight, off
// the request path unless synchronous) and the resulting library is
// swapped in atomically.
type SwapManager struct {
	ms      *ModelSet
	retrain Retrainer
	// synchronous runs retrains on the observing goroutine — determinism
	// for tests and the load-generator walkthrough.
	synchronous bool

	mu         sync.Mutex
	det        *monitor.Detector
	samples    map[string][]model.Sample
	sampleCap  int
	retraining bool

	wg          sync.WaitGroup
	retrainErrs atomic.Uint64
	driftFires  atomic.Uint64
}

// NewSwapManager builds the drift-to-swap loop. retrain may be nil, in
// which case drift is still detected and counted but no swap happens.
func NewSwapManager(ms *ModelSet, retrain Retrainer, cfg monitor.DriftConfig, synchronous bool) *SwapManager {
	return &SwapManager{
		ms:          ms,
		retrain:     retrain,
		synchronous: synchronous,
		det:         monitor.NewDetector(cfg),
		samples:     map[string][]model.Sample{},
		sampleCap:   DefaultSampleCap,
	}
}

// ObserveCompletion folds one completion report into the drift loop.
// predictedRT is the forecast captured at placement time; obs carries the
// observed outcome; bg is the neighbour's characteristic vector.
func (sm *SwapManager) ObserveCompletion(app string, bg []float64, predictedRT float64, obs Observation) {
	if predictedRT <= 0 || obs.Runtime <= 0 || len(bg) != model.NumFeatures {
		return
	}
	relErr := model.PredictionError(predictedRT, obs.Runtime)

	sm.mu.Lock()
	w := append(sm.samples[app], model.Sample{
		BG:      append([]float64(nil), bg...),
		Runtime: obs.Runtime,
		IOPS:    obs.IOPS,
	})
	if len(w) > sm.sampleCap {
		w = w[len(w)-sm.sampleCap:]
	}
	sm.samples[app] = w
	fired := sm.det.Observe(relErr)
	launch := fired && !sm.retraining && sm.retrain != nil
	if fired {
		sm.driftFires.Add(1)
	}
	var snapshot map[string][]model.Sample
	if launch {
		sm.retraining = true
		snapshot = make(map[string][]model.Sample, len(sm.samples))
		for a, s := range sm.samples {
			snapshot[a] = append([]model.Sample(nil), s...)
		}
	}
	sm.mu.Unlock()

	if !launch {
		return
	}
	if sm.synchronous {
		sm.runRetrain(snapshot)
		return
	}
	sm.wg.Add(1)
	go func() {
		defer sm.wg.Done()
		sm.runRetrain(snapshot)
	}()
}

// runRetrain executes one retrain-and-swap cycle.
func (sm *SwapManager) runRetrain(snapshot map[string][]model.Sample) {
	lib, err := sm.retrain(snapshot)
	if err == nil {
		err = sm.ms.Swap(lib)
	}
	if err != nil {
		sm.retrainErrs.Add(1)
	}
	sm.mu.Lock()
	sm.retraining = false
	// A swap (or a failed attempt) starts a fresh error baseline either
	// way: the old reference distribution no longer describes the stream.
	sm.det.Reset()
	sm.mu.Unlock()
}

// TriggerSwap forces a retrain-and-swap now, synchronously — the manual
// path behind POST /v1/models/swap.
func (sm *SwapManager) TriggerSwap() error {
	if sm.retrain == nil {
		return fmt.Errorf("serve: no retrainer configured")
	}
	sm.mu.Lock()
	if sm.retraining {
		sm.mu.Unlock()
		return fmt.Errorf("serve: retrain already in flight")
	}
	sm.retraining = true
	snapshot := make(map[string][]model.Sample, len(sm.samples))
	for a, s := range sm.samples {
		snapshot[a] = append([]model.Sample(nil), s...)
	}
	sm.mu.Unlock()

	lib, err := sm.retrain(snapshot)
	if err == nil {
		err = sm.ms.Swap(lib)
	}
	sm.mu.Lock()
	sm.retraining = false
	sm.det.Reset()
	sm.mu.Unlock()
	if err != nil {
		sm.retrainErrs.Add(1)
	}
	return err
}

// Wait blocks until any in-flight asynchronous retrain has finished —
// part of graceful drain.
func (sm *SwapManager) Wait() { sm.wg.Wait() }

// DriftFires returns how many times the detector has fired.
func (sm *SwapManager) DriftFires() uint64 { return sm.driftFires.Load() }

// RetrainErrors returns how many retrain-and-swap cycles failed.
func (sm *SwapManager) RetrainErrors() uint64 { return sm.retrainErrs.Load() }
