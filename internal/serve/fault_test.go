package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"tracon/internal/model"
)

// jsonBody marshals v for a raw http.NewRequest (when the test needs the
// response headers httpJSON discards).
func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf)
}

// fillCluster submits tasks until every schedulable slot is busy, plus
// extra queued ones, and returns (placed, queued) records in submit order.
func fillCluster(t *testing.T, p *Placer, app string, placedN, queuedN int) (placed, queued []*Placement) {
	t.Helper()
	for i := 0; i < placedN+queuedN; i++ {
		rec, err := p.Submit(app)
		if err != nil {
			t.Fatal(err)
		}
		switch rec.Status {
		case StatusPlaced:
			placed = append(placed, rec)
		case StatusQueued:
			queued = append(queued, rec)
		default:
			t.Fatalf("unexpected status %q", rec.Status)
		}
	}
	if len(placed) != placedN || len(queued) != queuedN {
		t.Fatalf("filled %d placed / %d queued, want %d/%d", len(placed), len(queued), placedN, queuedN)
	}
	return placed, queued
}

func TestMachineLifecycleTransitions(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 2, Policy: "mios"})
	p := s.Placer()

	cases := []struct {
		name string
		op   func() error
		want error
	}{
		{"drain up", func() error { return p.Drain(0) }, nil},
		{"drain drained", func() error { return p.Drain(0) }, ErrBadTransition},
		{"undrain drained", func() error { return p.Undrain(0) }, nil},
		{"undrain up", func() error { return p.Undrain(0) }, ErrBadTransition},
		{"revive up", func() error { return p.Revive(0) }, ErrBadTransition},
		{"kill up", func() error { _, err := p.Kill(0); return err }, nil},
		{"kill down", func() error { _, err := p.Kill(0); return err }, ErrBadTransition},
		{"drain down", func() error { return p.Drain(0) }, ErrBadTransition},
		{"undrain down", func() error { return p.Undrain(0) }, ErrBadTransition},
		{"revive down", func() error { return p.Revive(0) }, nil},
		{"kill drained", func() error { p.mustDrain(t, 1); _, err := p.Kill(1); return err }, nil},
		{"drain unknown", func() error { return p.Drain(7) }, ErrUnknownMachine},
		{"kill unknown", func() error { _, err := p.Kill(-1); return err }, ErrUnknownMachine},
		{"revive unknown", func() error { return p.Revive(2) }, ErrUnknownMachine},
	}
	for _, tc := range cases {
		err := tc.op()
		if tc.want == nil && err != nil {
			t.Fatalf("%s: unexpected error %v", tc.name, err)
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Fatalf("%s: error %v, want %v", tc.name, err, tc.want)
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
}

// mustDrain is a test helper for table entries needing setup.
func (p *Placer) mustDrain(t *testing.T, id int) {
	t.Helper()
	if err := p.Drain(id); err != nil {
		t.Fatal(err)
	}
}

func TestDrainCordonsMachine(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 2, Policy: "mios"})
	p := s.Placer()
	app := testLibrary(t, model.NLM).Apps()[0]

	if err := p.Drain(1); err != nil {
		t.Fatal(err)
	}
	// Only machine 0's two slots are schedulable.
	placed, queued := fillCluster(t, p, app, 2, 2)
	for _, rec := range placed {
		if rec.Machine != 0 {
			t.Fatalf("task placed on cordoned machine: %+v", rec)
		}
	}
	if avail, total := p.Capacity(); avail != 2 || total != 4 {
		t.Fatalf("capacity %d/%d, want 2/4", avail, total)
	}
	// Undrain promotes the backlog onto the restored machine.
	if err := p.Undrain(1); err != nil {
		t.Fatal(err)
	}
	for _, rec := range queued {
		got, ok := p.Get(rec.ID)
		if !ok || got.Status != StatusPlaced || got.Machine != 1 {
			t.Fatalf("queued task after undrain: %+v", got)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestKillRequeuesInFlightAtQueueFront(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 2, Policy: "fifo"})
	p := s.Placer()
	app := testLibrary(t, model.NLM).Apps()[0]

	placed, queued := fillCluster(t, p, app, 4, 1)
	var victims []*Placement
	for _, rec := range placed {
		if rec.Machine == 0 {
			victims = append(victims, rec)
		}
	}
	if len(victims) != 2 {
		t.Fatalf("%d tasks on machine 0, want 2", len(victims))
	}

	requeued, err := p.Kill(0)
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 2 {
		t.Fatalf("kill requeued %d, want 2", requeued)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The victims are queued again — reset placement fields, one retry each.
	for _, v := range victims {
		got, _ := p.Get(v.ID)
		if got.Status != StatusQueued || got.Machine != -1 || got.Slot != -1 || got.Retries != 1 {
			t.Fatalf("victim after kill: %+v", got)
		}
	}
	// Completing a victim at its old placement is now a conflict.
	if _, err := p.Complete(victims[0].ID); !errors.Is(err, ErrNotPlaced) {
		t.Fatalf("completing a killed task: %v, want ErrNotPlaced", err)
	}

	// Freeing a slot on the surviving machine promotes the FIRST victim,
	// not the pre-kill queue tail: kills re-enter at the queue front in
	// slot order.
	var survivor *Placement
	for _, rec := range placed {
		if rec.Machine == 1 {
			survivor = rec
			break
		}
	}
	if _, err := p.Complete(survivor.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(victims[0].ID)
	if got.Status != StatusPlaced || got.Machine != 1 {
		t.Fatalf("first victim after a slot freed: %+v", got)
	}
	if tail, _ := p.Get(queued[0].ID); tail.Status != StatusQueued {
		t.Fatalf("queue tail overtook a killed task: %+v", tail)
	}

	// Revival restores capacity and absorbs the backlog.
	if err := p.Revive(0); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{victims[1].ID, queued[0].ID} {
		if got, _ := p.Get(id); got.Status != StatusPlaced {
			t.Fatalf("after revive: %+v", got)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionSheddingTable pins the scaled queue bound and the
// Retry-After hint to exact values across capacity levels.
func TestAdmissionSheddingTable(t *testing.T) {
	cases := []struct {
		name             string
		maxQueue         int
		depth            int
		available, total int
		full             bool
		after            int
	}{
		{"full capacity, below bound", 8, 7, 8, 8, false, 1},
		{"full capacity, at bound", 8, 8, 8, 8, true, 1},
		{"half capacity halves the bound", 8, 4, 4, 8, true, 2},
		{"half capacity, below scaled bound", 8, 3, 4, 8, false, 2},
		{"third capacity rounds the hint up", 9, 3, 3, 9, true, 3},
		{"one slot keeps a one-task queue", 8, 0, 1, 8, false, 8},
		{"one slot, one queued", 8, 1, 1, 8, true, 8},
		{"zero capacity rejects everything", 8, 0, 0, 8, true, retryAfterCap},
		{"disabled bound stays disabled", -1, 1000, 4, 8, false, 2},
		{"disabled bound, zero capacity", -1, 0, 0, 8, true, retryAfterCap},
		{"hint caps at 30", 64, 0, 1, 64, false, retryAfterCap},
	}
	for _, tc := range cases {
		a := NewAdmission(0, tc.maxQueue)
		if got := a.WouldRejectScaled(tc.depth, tc.available, tc.total); got != tc.full {
			t.Errorf("%s: WouldRejectScaled = %v, want %v", tc.name, got, tc.full)
		}
		if got := retryAfter(tc.available, tc.total); got != tc.after {
			t.Errorf("%s: retryAfter = %d, want %d", tc.name, got, tc.after)
		}
		// The checks are pure: probing must never inflate the counter.
		if got := a.Rejected(); got != 0 {
			t.Errorf("%s: WouldRejectScaled mutated the rejection counter to %d", tc.name, got)
		}
	}
}

// TestHTTPMachineOpsAndShedding drives the machine lifecycle over the HTTP
// surface and checks fault-aware admission: exact statuses, Retry-After
// values, and the requeue count in the kill response.
func TestHTTPMachineOpsAndShedding(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 2, Policy: "fifo", MaxQueue: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	app := testLibrary(t, model.NLM).Apps()[0]

	var op machineOpResponse
	if code := httpJSON(t, "POST", ts.URL+"/v1/machines/1/drain", nil, &op); code != http.StatusOK || op.State != MachineDrained {
		t.Fatalf("drain: %d %+v", code, op)
	}
	if code := httpJSON(t, "POST", ts.URL+"/v1/machines/1/drain", nil, nil); code != http.StatusConflict {
		t.Fatalf("double drain: status %d, want 409", code)
	}
	if code := httpJSON(t, "POST", ts.URL+"/v1/machines/9/kill", nil, nil); code != http.StatusNotFound {
		t.Fatalf("kill unknown: status %d, want 404", code)
	}
	if code := httpJSON(t, "POST", ts.URL+"/v1/machines/x/kill", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("kill bad id: status %d, want 400", code)
	}
	if code := httpJSON(t, "POST", ts.URL+"/v1/machines/1/undrain", nil, &op); code != http.StatusOK || op.State != MachineUp {
		t.Fatalf("undrain: %d %+v", code, op)
	}

	// Fill both machines, then kill machine 0: the response reports its two
	// in-flight tasks returned to the queue.
	for i := 0; i < 4; i++ {
		if code := httpJSON(t, "POST", ts.URL+"/v1/tasks", submitRequest{App: app}, nil); code != http.StatusOK {
			t.Fatalf("submit %d: status %d", i, code)
		}
	}
	if code := httpJSON(t, "POST", ts.URL+"/v1/machines/0/kill", nil, &op); code != http.StatusOK || op.Requeued != 2 {
		t.Fatalf("kill: %d %+v", code, op)
	}

	// Capacity is halved (2 of 4 slots): the queue bound drops from 4 to 2,
	// already holding the two requeued tasks — the next submit sheds with
	// Retry-After ⌈4/2⌉ = 2.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/tasks", jsonBody(t, submitRequest{App: app}))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit at reduced capacity: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}

	// Kill the last machine: zero capacity, everything sheds at the cap.
	if code := httpJSON(t, "POST", ts.URL+"/v1/machines/1/kill", nil, &op); code != http.StatusOK {
		t.Fatalf("kill 1: status %d", code)
	}
	req, _ = http.NewRequest("POST", ts.URL+"/v1/tasks", jsonBody(t, submitRequest{App: app}))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit with no machines: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Fatalf("Retry-After = %q, want \"30\"", got)
	}

	// Revive both; the backlog lands and the daemon serves again.
	for _, m := range []string{"0", "1"} {
		if code := httpJSON(t, "POST", ts.URL+"/v1/machines/"+m+"/revive", nil, nil); code != http.StatusOK {
			t.Fatalf("revive %s: status %d", m, code)
		}
	}
	var mvs []MachineView
	if code := httpJSON(t, "GET", ts.URL+"/v1/machines", nil, &mvs); code != http.StatusOK {
		t.Fatalf("machines: status %d", code)
	}
	busy := 0
	for _, mv := range mvs {
		if mv.State != MachineUp {
			t.Fatalf("machine %d state %q after revive", mv.ID, mv.State)
		}
		for _, sl := range mv.Slots {
			if sl.State == "busy" {
				busy++
			}
		}
	}
	if busy != 4 {
		t.Fatalf("%d busy slots after revive, want 4 (backlog re-placed)", busy)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
