package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tracon/internal/durable"
	"tracon/internal/model"
)

// newDurableServer boots a journaled server over dir with fsync=always.
// The caller "crashes" it by closing the manager without a final snapshot
// and booting a successor over the same dir.
func newDurableServer(t testing.TB, dir string, machines int) (*Server, *durable.Manager) {
	t.Helper()
	mgr, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(testLibrary(t, model.NLM), Config{Machines: machines, MaxQueue: -1, Journal: mgr})
	if err != nil {
		mgr.Close()
		t.Fatalf("booting journaled server: %v", err)
	}
	return s, mgr
}

// stateJSON renders the exported placer state for byte comparison.
func stateJSON(t testing.TB, st *durable.PlacerState) string {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// completeAll drives every non-terminal placement to completed.
func completeAll(t testing.TB, p *Placer, ids []string) {
	t.Helper()
	for pass := 0; pass < len(ids)+1; pass++ {
		progress := false
		for _, id := range ids {
			rec, ok := p.Get(id)
			if !ok {
				t.Fatalf("placement %s vanished", id)
			}
			if rec.Status == StatusPlaced {
				if _, err := p.Complete(id); err != nil {
					t.Fatalf("complete %s: %v", id, err)
				}
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for _, id := range ids {
		if rec, _ := p.Get(id); rec.Status != StatusCompleted {
			t.Fatalf("placement %s stuck at %s", id, rec.Status)
		}
	}
}

// TestRecoveryGoldenState: with every task terminal at crash time, the
// recovered placer state must be byte-identical to the live export —
// including the sequence stamp, since recovery with no orphans appends
// nothing.
func TestRecoveryGoldenState(t *testing.T) {
	dir := t.TempDir()
	s1, mgr1 := newDurableServer(t, dir, 2)
	p1 := s1.Placer()
	apps := testLibrary(t, model.NLM).Apps()
	var ids []string
	for i := 0; i < 6; i++ {
		rec, err := p1.SubmitKeyed(apps[i%len(apps)], fmt.Sprintf("req-%d", i), fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	completeAll(t, p1, ids)
	if err := p1.Drain(1); err != nil {
		t.Fatal(err)
	}
	live := stateJSON(t, p1.ExportState())
	if err := mgr1.Close(); err != nil { // crash: no final snapshot
		t.Fatal(err)
	}

	s2, mgr2 := newDurableServer(t, dir, 2)
	defer mgr2.Close()
	recovered := stateJSON(t, s2.Placer().ExportState())
	if recovered != live {
		t.Fatalf("recovered state diverges from live export:\nlive:      %s\nrecovered: %s", live, recovered)
	}
	if err := s2.Placer().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryOrphanRequeue crashes with tasks in flight: recovery must
// re-queue them (FIFO-fair, at the front, in admission order), bump their
// retry counts, and leave an invariant-clean placer.
func TestRecoveryOrphanRequeue(t *testing.T) {
	dir := t.TempDir()
	s1, mgr1 := newDurableServer(t, dir, 2)
	p1 := s1.Placer()
	apps := testLibrary(t, model.NLM).Apps()
	var ids []string
	placed := 0
	for i := 0; i < 6; i++ {
		rec, err := p1.SubmitKeyed(apps[i%len(apps)], "", fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
		if rec.Status == StatusPlaced {
			placed++
		}
	}
	if placed == 0 {
		t.Fatal("fixture: no task was placed before the crash")
	}
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, mgr2 := newDurableServer(t, dir, 2)
	defer mgr2.Close()
	p2 := s2.Placer()
	if err := p2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	requeued := 0
	for _, id := range ids {
		rec, ok := p2.Get(id)
		if !ok {
			t.Fatalf("admitted task %s lost in recovery", id)
		}
		switch rec.Status {
		case StatusPlaced, StatusQueued:
		default:
			t.Fatalf("task %s recovered as %s", id, rec.Status)
		}
		if rec.Retries > 0 {
			requeued++
		}
	}
	if requeued != placed {
		t.Fatalf("%d tasks show a retry, want the %d orphans", requeued, placed)
	}
	// A third boot replays the journaled requeue and orphans the second
	// boot's re-placements in turn: every crash-restart costs in-flight
	// tasks exactly one more retry, and nothing else drifts.
	if err := mgr2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, mgr3 := newDurableServer(t, dir, 2)
	defer mgr3.Close()
	p3 := s3.Placer()
	if err := p3.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		rec2, _ := p2.Get(id)
		rec3, ok := p3.Get(id)
		if !ok {
			t.Fatalf("task %s lost on the third boot", id)
		}
		if rec2.Retries > 0 && rec3.Retries != rec2.Retries+1 {
			t.Fatalf("task %s: retries %d after boot 2, %d after boot 3 (want +1)", id, rec2.Retries, rec3.Retries)
		}
		if rec3.App != rec2.App || rec3.ID != rec2.ID {
			t.Fatalf("task %s mutated across boots", id)
		}
	}
}

// TestRecoveryDedupSurvivesRestart: a client retrying a keyed submit
// across a daemon crash gets its original placement back.
func TestRecoveryDedupSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, mgr1 := newDurableServer(t, dir, 2)
	apps := testLibrary(t, model.NLM).Apps()
	rec1, err := s1.Placer().SubmitKeyed(apps[0], "req-1", "client-key-A")
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, mgr2 := newDurableServer(t, dir, 2)
	defer mgr2.Close()
	rec2, err := s2.Placer().SubmitKeyed(apps[1], "req-2", "client-key-A")
	if err != nil {
		t.Fatal(err)
	}
	if rec2.ID != rec1.ID {
		t.Fatalf("dedup lost across restart: %s vs %s", rec2.ID, rec1.ID)
	}
	if rec2.App != rec1.App {
		t.Fatalf("dedup returned a different task: app %s vs %s", rec2.App, rec1.App)
	}
}

// TestRecoveryMachineLifecycle: drained and down machines stay that way
// across a crash, and a kill's evictions replay.
func TestRecoveryMachineLifecycle(t *testing.T) {
	dir := t.TempDir()
	s1, mgr1 := newDurableServer(t, dir, 3)
	p1 := s1.Placer()
	apps := testLibrary(t, model.NLM).Apps()
	for i := 0; i < 6; i++ {
		if _, err := p1.Submit(apps[i%len(apps)]); err != nil {
			t.Fatal(err)
		}
	}
	if err := p1.Drain(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, mgr2 := newDurableServer(t, dir, 3)
	defer mgr2.Close()
	mvs := s2.Placer().Machines()
	if mvs[0].State != MachineDrained {
		t.Fatalf("machine 0 recovered as %s, want drained", mvs[0].State)
	}
	if mvs[1].State != MachineDown {
		t.Fatalf("machine 1 recovered as %s, want down", mvs[1].State)
	}
	for _, sv := range mvs[1].Slots {
		if sv.Task != "" {
			t.Fatalf("down machine still holds %s", sv.Task)
		}
	}
	if err := s2.Placer().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayIdempotence applies the same journal suffix twice onto one
// placer: state-guarded transitions must converge, byte-identically.
func TestReplayIdempotence(t *testing.T) {
	dir := t.TempDir()
	s1, mgr1 := newDurableServer(t, dir, 2)
	p1 := s1.Placer()
	apps := testLibrary(t, model.NLM).Apps()
	var ids []string
	for i := 0; i < 6; i++ {
		rec, err := p1.SubmitKeyed(apps[i%len(apps)], "", fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	if _, err := p1.Complete(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}

	mgr2, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	info := mgr2.Recovery()
	if len(info.Events) == 0 {
		t.Fatal("fixture journaled no events")
	}

	// A bare (journal-less) server replays the suffix by hand, twice.
	s2, err := New(testLibrary(t, model.NLM), Config{Machines: 2, MaxQueue: -1})
	if err != nil {
		t.Fatal(err)
	}
	p2 := s2.Placer()
	if info.Snapshot != nil {
		if err := p2.RestoreState(info.Snapshot); err != nil {
			t.Fatal(err)
		}
	}
	replay := func() {
		for _, ev := range info.Events {
			if err := p2.Apply(ev); err != nil {
				t.Fatalf("apply seq %d (%s): %v", ev.Seq, ev.Kind, err)
			}
		}
	}
	replay()
	once := stateJSON(t, p2.ExportState())
	replay()
	twice := stateJSON(t, p2.ExportState())
	if once != twice {
		t.Fatalf("double replay diverged:\nonce:  %s\ntwice: %s", once, twice)
	}
	if err := p2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryCrashPointMatrix truncates the journal at a ladder of byte
// offsets — frame boundaries and mid-frame tears alike — and requires
// every prefix to boot: recovery either replays a clean prefix or
// truncates a torn tail, never refuses or corrupts.
func TestRecoveryCrashPointMatrix(t *testing.T) {
	dir := t.TempDir()
	s1, mgr1 := newDurableServer(t, dir, 2)
	p1 := s1.Placer()
	apps := testLibrary(t, model.NLM).Apps()
	var ids []string
	for i := 0; i < 5; i++ {
		rec, err := p1.SubmitKeyed(apps[i%len(apps)], "", fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	if _, err := p1.Complete(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s: %v", dir, err)
	}
	// The newest (event-bearing) segment is the crash surface.
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		t.Fatal(err)
	}

	const magicLen = 8
	if len(data) <= magicLen {
		t.Fatalf("fixture segment holds no events (%d bytes)", len(data))
	}
	span := len(data) - magicLen
	for step := 0; step <= 8; step++ {
		cut := magicLen + span*step/8
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			cdir := t.TempDir()
			for _, sp := range snaps {
				b, err := os.ReadFile(sp)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(cdir, filepath.Base(sp)), b, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.WriteFile(filepath.Join(cdir, filepath.Base(seg)), data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			s2, mgr2 := newDurableServer(t, cdir, 2)
			defer mgr2.Close()
			p2 := s2.Placer()
			if err := p2.CheckInvariants(); err != nil {
				t.Fatalf("invariants after cut %d: %v", cut, err)
			}
			// Whatever was admitted in the surviving prefix is intact; no
			// phantom tasks appear.
			for _, id := range ids {
				if rec, ok := p2.Get(id); ok {
					switch rec.Status {
					case StatusQueued, StatusPlaced, StatusCompleted:
					default:
						t.Fatalf("task %s recovered as %s", id, rec.Status)
					}
					if !strings.HasPrefix(rec.ID, "t-") {
						t.Fatalf("foreign task ID %q", rec.ID)
					}
				}
			}
		})
	}
}

// TestRecoveryTornSnapshotFallback boots over a data dir whose newest
// snapshot is torn: the server must fall back to the older snapshot plus
// the WAL suffix instead of refusing to start.
func TestRecoveryTornSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	s1, mgr1 := newDurableServer(t, dir, 2)
	p1 := s1.Placer()
	apps := testLibrary(t, model.NLM).Apps()
	rec, err := p1.SubmitKeyed(apps[0], "", "key-0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.SubmitKeyed(apps[1], "", "key-1"); err != nil {
		t.Fatal(err)
	}
	last := mgr1.LastSeq()
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn newest snapshot, as a crash mid-rotation would leave it.
	torn := filepath.Join(dir, fmt.Sprintf("snap-%020d.snap", last))
	if err := os.WriteFile(torn, []byte("TRCNSNP1 torn mid write"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, mgr2 := newDurableServer(t, dir, 2)
	defer mgr2.Close()
	if got := mgr2.Recovery().SkippedSnapshots; got != 1 {
		t.Fatalf("SkippedSnapshots = %d, want 1", got)
	}
	for _, id := range []string{rec.ID, "t-2"} {
		if _, ok := s2.Placer().Get(id); !ok {
			t.Fatalf("task %s lost through snapshot fallback", id)
		}
	}
	if err := s2.Placer().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryWrongClusterShape: booting a data dir recorded by a
// different inventory size must fail loudly, not half-restore.
func TestRecoveryWrongClusterShape(t *testing.T) {
	dir := t.TempDir()
	s1, mgr1 := newDurableServer(t, dir, 2)
	if _, err := s1.Placer().Submit(testLibrary(t, model.NLM).Apps()[0]); err != nil {
		t.Fatal(err)
	}
	if err := s1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}

	mgr2, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if _, err := New(testLibrary(t, model.NLM), Config{Machines: 5, Journal: mgr2}); err == nil {
		t.Fatal("booted a 5-machine server over a 2-machine journal")
	} else if !strings.Contains(err.Error(), "cluster shape") {
		t.Fatalf("unexpected shape error: %v", err)
	}
}
