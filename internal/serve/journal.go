package serve

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"

	"tracon/internal/durable"
)

// Journal integration: the placer appends one durable.Event at every
// state-mutating commit point, inside the same p.mu critical section as
// the mutation itself — WAL order therefore equals mutation order, and a
// request is acknowledged only after its events are (per the configured
// fsync policy) on disk. On boot, Server.recover rebuilds the placer
// from the newest snapshot plus the WAL suffix, re-queues orphaned
// in-flight tasks at the queue front, and verifies invariants before the
// daemon serves its first request.

// journal is the placer's nil-safe handle on a durable.Manager. An
// append failure (disk full, data dir yanked) poisons it permanently:
// the daemon keeps serving — availability over durability, loudly — but
// every subsequent append is dropped and /healthz reports the sticky
// error until the operator intervenes.
type journal struct {
	mgr    *durable.Manager
	logger *slog.Logger

	mu  sync.Mutex
	err error
}

// append journals a group of events as one commit point (one fsync under
// the always policy). Nil-safe; no-op once poisoned.
func (j *journal) append(evs ...durable.Event) {
	if j == nil || len(evs) == 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if _, err := j.mgr.Append(evs...); err != nil {
		j.err = err
		if j.logger != nil {
			j.logger.LogAttrs(context.Background(), slog.LevelError,
				"journal append failed; durability lost until restart",
				slog.String("error", err.Error()))
		}
	}
}

// Err returns the sticky append failure, if any.
func (j *journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// lastSeq reads the newest assigned sequence (0 without a journal).
func (j *journal) lastSeq() uint64 {
	if j == nil {
		return 0
	}
	return j.mgr.LastSeq()
}

// enabled avoids building events no one will consume.
func (j *journal) enabled() bool { return j != nil }

// Event constructors, shared by the live paths and the tests.

func admitEvent(rec *Placement) durable.Event {
	return durable.Event{
		Kind: durable.EvAdmit, Task: rec.ID, App: rec.App,
		Req: rec.ReqID, Dedup: rec.idem, Machine: -1, Slot: -1,
	}
}

func taskRef(rec *Placement) durable.TaskRef {
	return durable.TaskRef{Task: rec.ID, App: rec.App, Req: rec.ReqID, Dedup: rec.idem}
}

func placeEvent(rec *Placement) durable.Event {
	return durable.Event{
		Kind: durable.EvPlace, Task: rec.ID,
		Machine: rec.Machine, Slot: rec.Slot, Neighbour: rec.Neighbour,
		PredRT: rec.PredictedRuntime, PredIOPS: rec.PredictedIOPS,
		Gen: rec.Generation, BG: append([]float64(nil), rec.bg...),
	}
}

// resetToQueuedLocked strips a record's placement binding, returning it
// to the queued state (kill eviction, orphan requeue, replay).
func resetToQueuedLocked(rec *Placement) {
	rec.Status = StatusQueued
	rec.Machine = -1
	rec.Slot = -1
	rec.Neighbour = ""
	rec.PredictedRuntime = 0
	rec.PredictedIOPS = 0
	rec.bg = nil
}

// ExportState captures the placer's full serving state as a neutral
// snapshot struct, stamped with the journal's last assigned sequence.
// Taken under one lock hold, and placer events are only appended under
// that same lock, so the stamp covers exactly the mutations the state
// reflects.
func (p *Placer) ExportState() *durable.PlacerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := &durable.PlacerState{
		Seq:    p.journal.lastSeq(),
		NextID: p.nextID,
		Queue:  append([]string(nil), p.queue...),
		Done:   append([]string(nil), p.done...),
	}
	st.Machines = make([]durable.MachineState, len(p.machines))
	for i := range p.machines {
		ms := durable.MachineState{State: p.machines[i].state, Slots: make([]durable.SlotState, SlotsPerMachine)}
		for j, s := range p.machines[i].slots {
			ms.Slots[j] = durable.SlotState{Task: s.taskID, App: s.app}
		}
		st.Machines[i] = ms
	}
	st.Placements = make([]durable.PlacementState, 0, len(p.placements))
	for _, rec := range p.placements {
		st.Placements = append(st.Placements, durable.PlacementState{
			ID: rec.ID, App: rec.App, Status: rec.Status,
			Machine: rec.Machine, Slot: rec.Slot, Neighbour: rec.Neighbour,
			PredRT: rec.PredictedRuntime, PredIOPS: rec.PredictedIOPS,
			Gen: rec.Generation, Error: rec.Error, Retries: rec.Retries,
			Req: rec.ReqID, Dedup: rec.idem,
			BG: append([]float64(nil), rec.bg...),
		})
	}
	sort.Slice(st.Placements, func(i, j int) bool {
		ni, iok := durable.TaskSeq(st.Placements[i].ID)
		nj, jok := durable.TaskSeq(st.Placements[j].ID)
		if iok && jok {
			return ni < nj
		}
		return st.Placements[i].ID < st.Placements[j].ID
	})
	if p.admission != nil {
		st.Rejected = p.admission.Rejected()
	}
	return st
}

// RestoreState replaces the placer's state with a recovered snapshot.
// Boot-time only: the placer must not be serving yet.
func (p *Placer) RestoreState(st *durable.PlacerState) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(st.Machines) != len(p.machines) {
		return fmt.Errorf("serve: snapshot describes %d machines but the inventory has %d — the data dir belongs to a different cluster shape", len(st.Machines), len(p.machines))
	}
	placements := make(map[string]*Placement, len(st.Placements))
	dedup := map[string]string{}
	placed := 0
	for _, ps := range st.Placements {
		rec := &Placement{
			ID: ps.ID, App: ps.App, Status: ps.Status,
			Machine: ps.Machine, Slot: ps.Slot, Neighbour: ps.Neighbour,
			PredictedRuntime: ps.PredRT, PredictedIOPS: ps.PredIOPS,
			Generation: ps.Gen, Error: ps.Error, Retries: ps.Retries,
			ReqID: ps.Req, idem: ps.Dedup,
			bg: append([]float64(nil), ps.BG...),
		}
		placements[rec.ID] = rec
		if rec.idem != "" {
			dedup[rec.idem] = rec.ID
		}
		if rec.Status == StatusPlaced {
			placed++
		}
	}
	for i, ms := range st.Machines {
		p.machines[i].state = ms.State
		p.machines[i].slots = [SlotsPerMachine]slot{}
		for j := 0; j < len(ms.Slots) && j < SlotsPerMachine; j++ {
			p.machines[i].slots[j] = slot{taskID: ms.Slots[j].Task, app: ms.Slots[j].App}
		}
	}
	p.placements = placements
	p.dedup = dedup
	p.queue = append([]string(nil), st.Queue...)
	p.done = append([]string(nil), st.Done...)
	p.nextID = st.NextID
	p.placedCount = placed
	p.version++
	if p.admission != nil {
		p.admission.CountRejections(int(st.Rejected))
	}
	return nil
}

// Apply replays one journaled event onto the placer, idempotently: every
// transition is guarded by the record's (or machine's) current state, so
// replaying a suffix that partially overlaps the snapshot — or replaying
// the same suffix twice — converges on the same state. Nothing here
// journals: replay must not re-journal history.
func (p *Placer) Apply(ev durable.Event) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch ev.Kind {
	case durable.EvAdmit:
		p.applyAdmitLocked(durable.TaskRef{Task: ev.Task, App: ev.App, Req: ev.Req, Dedup: ev.Dedup})
	case durable.EvBatchAdmit:
		for _, t := range ev.Tasks {
			p.applyAdmitLocked(t)
		}
	case durable.EvPlace:
		return p.applyPlaceLocked(ev)
	case durable.EvComplete:
		p.applyFinishLocked(ev.Task, StatusCompleted, "")
	case durable.EvFail:
		p.applyFailLocked(ev)
	case durable.EvKill:
		return p.applyKillLocked(ev)
	case durable.EvRequeue:
		p.applyRequeueLocked(ev)
	case durable.EvDrain, durable.EvUndrain, durable.EvRevive:
		return p.applyMachineLocked(ev)
	case durable.EvGenSwap:
		// Informational: a restarted daemon rebuilds its model library
		// independently of the dead one's generation counter.
	default:
		return fmt.Errorf("serve: replay: unknown event kind %q at seq %d", ev.Kind, ev.Seq)
	}
	p.version++
	return nil
}

func (p *Placer) applyAdmitLocked(t durable.TaskRef) {
	if t.Dedup != "" {
		p.dedup[t.Dedup] = t.Task
	}
	if n, ok := durable.TaskSeq(t.Task); ok && n > p.nextID {
		p.nextID = n
	}
	if _, ok := p.placements[t.Task]; ok {
		return
	}
	rec := &Placement{
		ID: t.Task, App: t.App, Status: StatusQueued,
		Machine: -1, Slot: -1, ReqID: t.Req, idem: t.Dedup,
	}
	p.placements[t.Task] = rec
	p.queue = append(p.queue, t.Task)
}

func (p *Placer) applyPlaceLocked(ev durable.Event) error {
	rec, ok := p.placements[ev.Task]
	if !ok || rec.Status != StatusQueued {
		return nil
	}
	if ev.Machine < 0 || ev.Machine >= len(p.machines) || ev.Slot < 0 || ev.Slot >= SlotsPerMachine {
		return fmt.Errorf("serve: replay: place seq %d targets slot %d/%d outside the inventory", ev.Seq, ev.Machine, ev.Slot)
	}
	if p.machines[ev.Machine].state != MachineUp {
		// The machine was up when this event was journaled but is not at
		// this replay point — an overlapping replay already applied the
		// later kill/drain. Leave the task queued; re-applying the kill is
		// a no-op, so placing here would strand the task on a dead machine.
		return nil
	}
	s := &p.machines[ev.Machine].slots[ev.Slot]
	if s.taskID != "" && s.taskID != ev.Task {
		return fmt.Errorf("serve: replay: place seq %d targets slot %d/%d already holding %q", ev.Seq, ev.Machine, ev.Slot, s.taskID)
	}
	if s.taskID == "" {
		p.placedCount++
	}
	*s = slot{taskID: ev.Task, app: rec.App}
	rec.Status = StatusPlaced
	rec.Machine = ev.Machine
	rec.Slot = ev.Slot
	rec.Neighbour = ev.Neighbour
	rec.PredictedRuntime = ev.PredRT
	rec.PredictedIOPS = ev.PredIOPS
	rec.Generation = ev.Gen
	rec.bg = append([]float64(nil), ev.BG...)
	p.removeQueuedLocked(ev.Task)
	p.version++
	return nil
}

// applyFinishLocked replays a terminal transition out of the placed state.
func (p *Placer) applyFinishLocked(id, status, errMsg string) {
	rec, ok := p.placements[id]
	if !ok || rec.Status != StatusPlaced {
		return
	}
	if rec.Machine >= 0 && rec.Machine < len(p.machines) &&
		p.machines[rec.Machine].slots[rec.Slot].taskID == id {
		p.machines[rec.Machine].slots[rec.Slot] = slot{}
		p.placedCount--
	}
	rec.Status = status
	rec.Error = errMsg
	p.finishLocked(id)
	p.version++
}

func (p *Placer) applyFailLocked(ev durable.Event) {
	rec, ok := p.placements[ev.Task]
	if !ok || rec.Status != StatusQueued {
		return
	}
	p.removeQueuedLocked(ev.Task)
	rec.Status = StatusFailed
	rec.Error = ev.Error
	p.finishLocked(ev.Task)
	p.version++
}

func (p *Placer) applyKillLocked(ev durable.Event) error {
	if ev.Machine < 0 || ev.Machine >= len(p.machines) {
		return fmt.Errorf("serve: replay: kill seq %d targets machine %d outside the inventory", ev.Seq, ev.Machine)
	}
	m := &p.machines[ev.Machine]
	if m.state == MachineDown {
		return nil // already applied (or machine died again after a revive)
	}
	m.state = MachineDown
	var front []string
	evict := func(rec *Placement) {
		if rec.Machine == ev.Machine && m.slots[rec.Slot].taskID == rec.ID {
			m.slots[rec.Slot] = slot{}
			p.placedCount--
		}
		resetToQueuedLocked(rec)
		rec.Retries++
		front = append(front, rec.ID)
	}
	seen := map[string]bool{}
	for _, t := range ev.Tasks {
		rec, ok := p.placements[t.Task]
		if !ok || rec.Status != StatusPlaced {
			continue
		}
		evict(rec)
		seen[t.Task] = true
	}
	// Anything still occupying the machine was placed there by later
	// replayed events than the journal's eviction list knew about; a down
	// machine must end empty either way.
	for si := range m.slots {
		if tid := m.slots[si].taskID; tid != "" && !seen[tid] {
			if rec, ok := p.placements[tid]; ok {
				evict(rec)
			} else {
				m.slots[si] = slot{}
				p.placedCount--
			}
		}
	}
	p.queue = append(front, p.queue...)
	p.version++
	return nil
}

func (p *Placer) applyRequeueLocked(ev durable.Event) {
	var front []string
	for _, t := range ev.Tasks {
		rec, ok := p.placements[t.Task]
		if !ok || rec.Status != StatusPlaced {
			continue
		}
		if rec.Machine >= 0 && rec.Machine < len(p.machines) &&
			p.machines[rec.Machine].slots[rec.Slot].taskID == rec.ID {
			p.machines[rec.Machine].slots[rec.Slot] = slot{}
			p.placedCount--
		}
		resetToQueuedLocked(rec)
		rec.Retries++
		front = append(front, rec.ID)
	}
	p.queue = append(front, p.queue...)
	p.version++
}

func (p *Placer) applyMachineLocked(ev durable.Event) error {
	if ev.Machine < 0 || ev.Machine >= len(p.machines) {
		return fmt.Errorf("serve: replay: %s seq %d targets machine %d outside the inventory", ev.Kind, ev.Seq, ev.Machine)
	}
	m := &p.machines[ev.Machine]
	switch ev.Kind {
	case durable.EvDrain:
		if m.state == MachineUp {
			m.state = MachineDrained
		}
	case durable.EvUndrain:
		if m.state == MachineDrained {
			m.state = MachineUp
		}
	case durable.EvRevive:
		if m.state == MachineDown {
			m.state = MachineUp
		}
	}
	p.version++
	return nil
}

// removeQueuedLocked drops one id from the backlog (replay paths only;
// the live paths rewrite the queue wholesale).
func (p *Placer) removeQueuedLocked(id string) {
	for i, q := range p.queue {
		if q == id {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			return
		}
	}
}

// RequeueOrphans sends every placed record back to the front of the
// queue in admission (numeric ID) order: the daemon that placed them
// died, so whatever was running in those VMs died with it — exactly the
// Kill eviction semantics, cluster-wide. The re-queue is itself
// journaled (EvRequeue) so a crash between recovery and the next
// snapshot replays it. Returns the number of orphans re-queued.
func (p *Placer) RequeueOrphans() int {
	p.mu.Lock()
	var orphans []*Placement
	for _, rec := range p.placements {
		if rec.Status == StatusPlaced {
			orphans = append(orphans, rec)
		}
	}
	sort.Slice(orphans, func(i, j int) bool {
		ni, iok := durable.TaskSeq(orphans[i].ID)
		nj, jok := durable.TaskSeq(orphans[j].ID)
		if iok && jok {
			return ni < nj
		}
		return orphans[i].ID < orphans[j].ID
	})
	front := make([]string, 0, len(orphans))
	refs := make([]durable.TaskRef, 0, len(orphans))
	type evicted struct {
		rec    *Placement
		mi, si int
	}
	traced := make([]evicted, 0, len(orphans))
	for _, rec := range orphans {
		mi, si := rec.Machine, rec.Slot
		if mi >= 0 && mi < len(p.machines) && p.machines[mi].slots[si].taskID == rec.ID {
			p.machines[mi].slots[si] = slot{}
			p.placedCount--
		}
		resetToQueuedLocked(rec)
		rec.Retries++
		front = append(front, rec.ID)
		refs = append(refs, taskRef(rec))
		traced = append(traced, evicted{rec: rec.clone(), mi: mi, si: si})
	}
	p.queue = append(front, p.queue...)
	if len(refs) > 0 {
		p.version++
		p.journal.append(durable.Event{Kind: durable.EvRequeue, Tasks: refs, Machine: -1, Slot: -1})
	}
	p.mu.Unlock()
	for _, e := range traced {
		p.tracer.evictRequeue(e.rec, e.mi, e.si)
	}
	return len(orphans)
}

// recover rebuilds the placer from mgr's snapshot + WAL suffix and
// attaches the journal to the live paths. Called from New before the
// daemon serves; any error here aborts the boot — serving over a state
// that cannot be trusted is worse than not serving.
func (s *Server) recover(mgr *durable.Manager) error {
	t0 := s.clock.Now()
	info := mgr.Recovery()
	if info.Snapshot != nil {
		if err := s.placer.RestoreState(info.Snapshot); err != nil {
			return err
		}
	}
	for _, ev := range info.Events {
		if err := s.placer.Apply(ev); err != nil {
			return fmt.Errorf("serve: replaying journal: %w", err)
		}
	}
	// Attach the journal only after replay: Apply must never re-journal
	// the history it is replaying.
	j := &journal{mgr: mgr, logger: s.logger}
	s.placer.journal = j
	s.journal = j
	orphans := s.placer.RequeueOrphans()
	if err := s.placer.CheckInvariants(); err != nil {
		return fmt.Errorf("serve: post-recovery invariant check: %w", err)
	}
	// Compact immediately: fold the replayed suffix (and the orphan
	// requeue) into a fresh snapshot so the next boot replays only what
	// happens after this one.
	if err := mgr.WriteSnapshot(s.placer.ExportState()); err != nil {
		return fmt.Errorf("serve: post-recovery snapshot: %w", err)
	}
	s.models.OnSwap(func(gen uint64) {
		j.append(durable.Event{Kind: durable.EvGenSwap, Gen: gen, Machine: -1, Slot: -1})
	})
	mgr.AttachMetrics(s.reg)
	if err := s.placer.drain(); err != nil {
		return fmt.Errorf("serve: post-recovery drain: %w", err)
	}
	dur := s.clock.Since(t0)
	s.tracer.recovery(len(info.Events), orphans, dur)
	s.logger.LogAttrs(context.Background(), slog.LevelInfo, "recovered journal",
		slog.Uint64("last_seq", mgr.LastSeq()),
		slog.Int("replayed_events", len(info.Events)),
		slog.Int("orphans_requeued", orphans),
		slog.Bool("snapshot_loaded", info.Snapshot != nil),
		slog.Int("snapshots_skipped", info.SkippedSnapshots),
		slog.Bool("torn_tail_truncated", info.TornTail),
		slog.Float64("dur_ms", dur.Seconds()*1e3),
	)
	return nil
}

// SnapshotNow exports the placer state and writes one compacted snapshot
// (rotating the WAL segment). A no-op without a journal.
func (s *Server) SnapshotNow() error {
	if s.journal == nil {
		return nil
	}
	return s.journal.mgr.WriteSnapshot(s.placer.ExportState())
}

// Journal exposes the manager (tracond's snapshot loop, tests); nil
// without durability.
func (s *Server) Journal() *durable.Manager {
	if s.journal == nil {
		return nil
	}
	return s.journal.mgr
}

// JournalErr reports the sticky journal failure, if any.
func (s *Server) JournalErr() error { return s.journal.Err() }
