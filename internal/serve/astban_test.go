package serve

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Design-regression tests in the style of durable's time.Now ban: parse
// every non-test file in this package and reject source patterns that
// would silently undo an invariant the package depends on.

// parseServeFiles yields every non-test .go file in this package.
func parseServeFiles(t *testing.T) (*token.FileSet, map[string]*ast.File) {
	t.Helper()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	files := map[string]*ast.File{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(".", name), nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files[name] = file
	}
	return fset, files
}

// TestNoDirectTimeCalls bans the runtime's timing primitives in this
// package: every timestamp, elapsed measurement, timer and sleep must
// flow through the injected obs.Clock, or the deterministic simulation
// harness (internal/dst) silently loses control of that code path. A new
// call site is a design regression, caught here.
func TestNoDirectTimeCalls(t *testing.T) {
	banned := map[string]bool{
		"Now": true, "Since": true, "Until": true,
		"AfterFunc": true, "After": true, "Tick": true,
		"NewTimer": true, "NewTicker": true, "Sleep": true,
	}
	fset, files := parseServeFiles(t)
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkg.Name == "time" && banned[sel.Sel.Name] {
				t.Errorf("%s: direct time.%s call — route it through the injected obs.Clock (Config.Clock)",
					fset.Position(sel.Pos()), sel.Sel.Name)
			}
			return true
		})
	}
}

// TestNoTornLoadReads bans pairing two single-field placer load reads —
// Capacity, QueueDepth, FreeSlots — inside one function. Each call takes
// and drops the placer lock, so two calls describe two different
// instants; arithmetic across them (an admission bound, a Retry-After
// hint, an exported gauge pair) is a torn read. Functions that need a
// consistent view must take one Snapshot(). placer.go itself is exempt:
// it defines the accessors and does its real work under p.mu.
func TestNoTornLoadReads(t *testing.T) {
	loadReads := map[string]bool{"Capacity": true, "QueueDepth": true, "FreeSlots": true}
	fset, files := parseServeFiles(t)
	for name, file := range files {
		if name == "placer.go" {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var calls []string
			var positions []token.Pos
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !loadReads[sel.Sel.Name] || len(call.Args) != 0 {
					return true
				}
				calls = append(calls, sel.Sel.Name)
				positions = append(positions, sel.Pos())
				return true
			})
			if len(calls) >= 2 {
				t.Errorf("%s: %s pairs %s — two lock acquisitions describe two instants; take one placer.Snapshot() instead",
					fset.Position(positions[1]), fn.Name.Name, strings.Join(calls, "+"))
			}
		}
	}
}

// TestTornLoadReadDetectorFires proves the detector actually recognizes
// the pattern it bans, so a refactor of the walker cannot quietly turn
// the guard into a no-op.
func TestTornLoadReadDetectorFires(t *testing.T) {
	src := `package serve
func torn(p *Placer) int { return p.Capacity() - p.QueueDepth() }
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "torn.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	loadReads := map[string]bool{"Capacity": true, "QueueDepth": true, "FreeSlots": true}
	found := 0
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && loadReads[sel.Sel.Name] && len(call.Args) == 0 {
				found++
			}
			return true
		})
	}
	if found < 2 {
		t.Fatalf("detector found %d load reads in the known-torn sample, want 2", found)
	}
}
