// Package serve is TRACON's online control plane: the long-running
// management server of Sec. 2 / Fig. 2, turned from a batch reproduction
// into a placement daemon. It loads a trained model library, owns a
// machine inventory, and answers streaming placement queries over a
// stdlib-only JSON HTTP API:
//
//	POST /v1/tasks                    submit a task for placement
//	POST /v1/tasks:batch              submit a batch; one queue-aware pass
//	GET  /v1/placements/{id}          placement lifecycle record
//	POST /v1/placements/{id}/complete free the slot, report the outcome
//	GET  /v1/machines                 inventory with per-VM occupancy
//	POST /v1/machines/{id}/drain      cordon: finish in-flight, accept no new
//	POST /v1/machines/{id}/undrain    return a cordoned machine to service
//	POST /v1/machines/{id}/kill       fail the machine; re-queue its tasks
//	POST /v1/machines/{id}/revive     return a dead machine to service
//	GET  /v1/models                   served family, generation, cache stats
//	POST /v1/models/swap              force a retrain-and-swap
//	GET  /healthz                     liveness + census
//	GET  /metrics                     obs.Registry snapshot (JSON)
//	/debug/pprof/*                    runtime profiling
//
// Three serving-specific mechanisms live underneath: a sharded bounded
// prediction cache so repeated co-location scoring skips regression
// evaluation (cache.go), admission control with in-flight and
// queue-depth backpressure (admission.go), and drift-triggered model
// hot-swap under an RWMutex so a retrained family replaces the served one
// without dropping requests (swap.go).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"path"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"tracon/internal/durable"
	"tracon/internal/model"
	"tracon/internal/monitor"
	"tracon/internal/obs"
	"tracon/internal/sched"
)

// Config assembles a Server.
type Config struct {
	// Machines is the inventory size (two VMs each).
	Machines int
	// Policy is the scheduling policy: "mios" (default), "fifo", "mibs",
	// "mix". QueueLen is the batch size for the batch policies.
	Policy   string
	QueueLen int
	// Objective selects the optimization target (default MinRuntime).
	Objective sched.Objective
	// MaxInflight bounds concurrent submissions (DefaultMaxInflight if 0).
	MaxInflight int
	// MaxQueue bounds the backlog; beyond it submissions get 429. Zero
	// defaults to 4 tasks per VM; negative disables the bound.
	MaxQueue int
	// CacheCap is the prediction cache's per-shard entry bound
	// (DefaultCacheCap if 0). DisableCache scores without memoization —
	// the reference path the cache is validated against.
	CacheCap     int
	DisableCache bool
	// CoalesceWindow, when positive, micro-batches singleton submissions:
	// a POST /v1/tasks waits up to this long for companions, then one
	// queue-aware scheduling pass places the whole group. Zero disables
	// coalescing (each submission schedules immediately).
	CoalesceWindow time.Duration
	// BatchMax caps one scheduling pass's batch: the coalescer flushes
	// early at this size and POST /v1/tasks:batch refuses larger requests
	// (DefaultBatchMax if 0).
	BatchMax int
	// Retrain, when set, enables drift-triggered and manual hot-swap.
	Retrain Retrainer
	// Drift tunes the detector; zero values take monitor defaults.
	Drift monitor.DriftConfig
	// SyncRetrain runs retrains on the completing request's goroutine
	// instead of asynchronously (deterministic tests and walkthroughs).
	SyncRetrain bool
	// CompletedCap bounds retained finished placement records.
	CompletedCap int
	// Logger receives the daemon's structured logs; nil discards them.
	Logger *slog.Logger
	// TraceCap bounds the serving-span ring exported on GET /v1/trace
	// (obs.DefaultTraceCap if 0; negative disables tracing entirely).
	TraceCap int
	// SLOWindow, SLOLatencyP99 and SLOErrorRate tune the rolling
	// objectives behind GET /v1/slo; zero values take the obs defaults,
	// negative objectives disable that check.
	SLOWindow     time.Duration
	SLOLatencyP99 float64
	SLOErrorRate  float64
	// Clock injects the daemon's time source: every timestamp, latency
	// measurement and timer (coalesce windows, SLO epochs, Retry-After
	// arithmetic) reads it. Nil takes the wall clock; the deterministic
	// simulation harness passes an obs.VirtualClock so the whole serving
	// stack advances only via Advance.
	Clock obs.Clock
	// Journal, when set, makes the placer crash-safe: New recovers the
	// placer from the journal's newest snapshot plus WAL replay (verifying
	// invariants before serving), and every subsequent lifecycle mutation
	// is appended at its commit point. The server takes ownership of
	// appends and snapshots; the caller still owns Close.
	Journal *durable.Manager
}

// Server is the tracond daemon core, constructed over a trained library.
type Server struct {
	cfg       Config
	models    *ModelSet
	placer    *Placer
	swapper   *SwapManager
	admission *Admission
	cache     *PredCache // nil when disabled
	coalescer *Coalescer // nil when CoalesceWindow is zero
	batchMax  int

	clock     obs.Clock
	reg       *obs.Registry
	latency   *obs.Histogram
	decision  *obs.Histogram
	batchSize *obs.Histogram
	batchLat  *obs.Histogram
	start     time.Time

	logger    *slog.Logger
	tracer    *serveTracer // nil when tracing is disabled
	journal   *journal     // nil without Config.Journal
	slo       *obs.SLOTracker
	sloStatus atomic.Value // string; last evaluated SLO status
	reqPrefix string
	reqSeq    atomic.Uint64
}

// New builds a Server serving placements from lib.
func New(lib *model.Library, cfg Config) (*Server, error) {
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("serve: config needs Machines > 0")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = obs.Wall
	}
	var cache *PredCache
	if !cfg.DisableCache {
		cache = NewPredCache(cfg.CacheCap)
	}
	ms, err := NewModelSet(lib, cfg.Policy, cfg.QueueLen, cfg.Objective, cache)
	if err != nil {
		return nil, err
	}
	maxQueue := cfg.MaxQueue
	if maxQueue == 0 {
		maxQueue = 4 * SlotsPerMachine * cfg.Machines
	}
	// The placer owns the admission bound: the scaled queue check and the
	// enqueue happen under one critical section, so concurrent submits can
	// never race the backlog past the bound.
	admission := NewAdmission(cfg.MaxInflight, maxQueue)
	placer, err := NewPlacer(ms, admission, cfg.Machines, cfg.CompletedCap)
	if err != nil {
		return nil, err
	}
	placer.clock = clock
	batchMax := cfg.BatchMax
	if batchMax <= 0 {
		batchMax = DefaultBatchMax
	}
	logger := cfg.Logger
	if logger == nil {
		logger = discardLogger()
	}
	policy := cfg.Policy
	if policy == "" {
		policy = "mios"
	}
	var tracer *serveTracer
	if cfg.TraceCap >= 0 {
		tracer = newServeTracer(policy, cfg.Machines, cfg.TraceCap, clock)
	}
	placer.tracer = tracer
	reg := obs.NewRegistry()
	s := &Server{
		cfg:       cfg,
		models:    ms,
		placer:    placer,
		swapper:   NewSwapManager(ms, cfg.Retrain, cfg.Drift, cfg.SyncRetrain),
		admission: admission,
		cache:     cache,
		batchMax:  batchMax,
		reg:       reg,
		latency:   reg.Histogram("serve.request_seconds", obs.DefaultLatencyBuckets()),
		decision:  reg.Histogram("serve.decision_seconds", obs.DefaultLatencyBuckets()),
		batchSize: reg.Histogram("serve.batch_size", obs.BatchSizeBuckets()),
		batchLat:  reg.Histogram("serve.batch_decision_seconds", obs.DefaultLatencyBuckets()),
		start:     clock.Now(),
		clock:     clock,
		logger:    logger,
		tracer:    tracer,
		slo: obs.NewSLOTracker(obs.SLOConfig{
			Window:     cfg.SLOWindow,
			LatencyP99: cfg.SLOLatencyP99,
			ErrorRate:  cfg.SLOErrorRate,
			Now:        clock.Now,
		}),
		reqPrefix: newReqPrefix(),
	}
	s.sloStatus.Store(obs.SLOStatusNoData)
	if cfg.Journal != nil {
		if err := s.recover(cfg.Journal); err != nil {
			return nil, err
		}
	}
	if cfg.CoalesceWindow > 0 {
		s.coalescer = NewCoalescer(placer, clock, cfg.CoalesceWindow, batchMax, reg)
	}
	return s, nil
}

// ModelSet exposes the hot-swap surface (tests, tracond's admin paths).
func (s *Server) ModelSet() *ModelSet { return s.models }

// Placer exposes the inventory (tests).
func (s *Server) Placer() *Placer { return s.placer }

// Swapper exposes the drift loop (tests, tracond).
func (s *Server) Swapper() *SwapManager { return s.swapper }

// Admission exposes the backpressure gate (tests, the DST harness's
// bound checks).
func (s *Server) Admission() *Admission { return s.admission }

// Coalescer exposes the micro-batcher; nil when CoalesceWindow is zero.
func (s *Server) Coalescer() *Coalescer { return s.coalescer }

// Registry exposes the metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// CheckInvariants delegates to the placer.
func (s *Server) CheckInvariants() error { return s.placer.CheckInvariants() }

// Drain waits for background work (async retrains) to finish; call after
// the HTTP listener has shut down.
func (s *Server) Drain() { s.swapper.Wait() }

// Handler builds the daemon's HTTP surface. Every route runs inside
// instrument (request IDs, per-route metrics, access log, SLO feed); the
// route label is the path pattern, so per-route series stay low-cardinality
// no matter how many placement IDs pass through.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(method, route string, h http.HandlerFunc) {
		mux.HandleFunc(method+" "+route, s.instrument(route, h))
	}
	handle("POST", "/v1/tasks", s.handleSubmit)
	handle("POST", "/v1/tasks:batch", s.handleSubmitBatch)
	handle("GET", "/v1/placements/{id}", s.handleGetPlacement)
	handle("POST", "/v1/placements/{id}/complete", s.handleComplete)
	handle("GET", "/v1/machines", s.handleMachines)
	handle("POST", "/v1/machines/{id}/drain", s.handleMachineOp)
	handle("POST", "/v1/machines/{id}/undrain", s.handleMachineOp)
	handle("POST", "/v1/machines/{id}/kill", s.handleMachineOp)
	handle("POST", "/v1/machines/{id}/revive", s.handleMachineOp)
	handle("GET", "/v1/models", s.handleModels)
	handle("POST", "/v1/models/swap", s.handleSwap)
	handle("GET", "/v1/trace", s.handleTrace)
	handle("GET", "/v1/slo", s.handleSLO)
	handle("GET", "/healthz", s.handleHealthz)
	handle("GET", "/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// submitRequest is the POST /v1/tasks body.
type submitRequest struct {
	App string `json:"app"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Decode the body BEFORE claiming an in-flight token: a slow client
	// streaming its request must not pin one of the admission slots —
	// admission covers only the placement decision itself.
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if req.App == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing \"app\""})
		return
	}
	reqID := RequestIDFrom(r.Context())
	// A client-supplied request ID doubles as the idempotency key: a retry
	// carrying the same ID — including across a daemon crash and restart —
	// returns the original placement instead of admitting a duplicate.
	// Server-minted IDs never dedup (the client did not promise anything).
	key := r.Header.Get(RequestIDHeader)
	if !s.admission.TryAcquire() {
		s.tracer.reject(reqID, req.App, "too many in-flight submissions")
		s.reject(w, 1, 1, "too many in-flight submissions")
		return
	}
	defer s.admission.Release()
	t0 := s.clock.Now()
	var (
		rec *Placement
		err error
	)
	if s.coalescer != nil {
		rec, err = s.coalescer.SubmitKeyed(req.App, reqID, key)
	} else {
		rec, err = s.placer.SubmitKeyed(req.App, reqID, key)
	}
	s.decision.Observe(s.clock.Since(t0).Seconds())
	if errors.Is(err, ErrQueueFull) {
		// The queue bound scales with schedulable capacity: a degraded
		// cluster sheds load early, and the Retry-After hint stretches as
		// capacity shrinks so clients back off harder the worse things are.
		snap := s.placer.Snapshot()
		reason := "placement queue is full"
		if snap.Available == 0 {
			reason = "no machines in service"
		}
		s.reject(w, retryAfter(snap.Available, snap.Total), 1, reason)
		return
	}
	if err != nil {
		s.placementError(w, err)
		return
	}
	s.reg.Counter("serve.tasks_submitted").Inc()
	if rec.Status == StatusPlaced {
		s.reg.Counter("serve.tasks_placed").Inc()
	} else {
		s.reg.Counter("serve.tasks_queued").Inc()
	}
	s.observeGauges()
	writeJSON(w, http.StatusOK, rec)
}

// BatchRequest is the POST /v1/tasks:batch body.
type BatchRequest struct {
	Tasks []BatchTask `json:"tasks"`
}

// BatchTask is one submission inside a batch.
type BatchTask struct {
	App string `json:"app"`
}

// BatchTaskResult is one task's outcome, positional with the request.
type BatchTaskResult struct {
	// Placement is set when the task was admitted (placed or queued).
	Placement *Placement `json:"placement,omitempty"`
	// Rejected marks a task shed by the admission bound.
	Rejected bool `json:"rejected,omitempty"`
	// Error carries a per-task failure (unknown application, queue full).
	Error string `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/tasks:batch response: per-task outcomes
// plus aggregate counts. The HTTP status is 200 whenever the batch itself
// was well-formed — individual tasks may still be rejected or fail, and
// RetryAfterS carries the backoff hint when any were shed.
type BatchResponse struct {
	Results     []BatchTaskResult `json:"results"`
	Placed      int               `json:"placed"`
	Queued      int               `json:"queued"`
	Rejected    int               `json:"rejected"`
	Failed      int               `json:"failed"`
	RetryAfterS int               `json:"retry_after_s,omitempty"`
}

func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if len(req.Tasks) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty \"tasks\""})
		return
	}
	if len(req.Tasks) > s.batchMax {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("batch of %d exceeds the %d-task limit", len(req.Tasks), s.batchMax)})
		return
	}
	apps := make([]string, len(req.Tasks))
	for i, task := range req.Tasks {
		if task.App == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("missing \"app\" in task %d", i)})
			return
		}
		apps[i] = task.App
	}
	// One batch claims one in-flight token: it is one scheduling decision.
	reqID := RequestIDFrom(r.Context())
	if !s.admission.TryAcquire() {
		for _, app := range apps {
			s.tracer.reject(reqID, app, "too many in-flight submissions")
		}
		s.reject(w, 1, len(apps), "too many in-flight submissions")
		return
	}
	defer s.admission.Release()

	// Every task in one HTTP batch shares the request's ID: spans and
	// records for the whole group join back to one submission. When the
	// client supplied that ID, each task additionally gets a positional
	// idempotency key derived from it ("<id>#<i>") — the key is an index
	// entry only and never lands on the record's ReqID.
	reqIDs := make([]string, len(apps))
	var keys []string
	if clientID := r.Header.Get(RequestIDHeader); clientID != "" {
		keys = make([]string, len(apps))
		for i := range keys {
			keys[i] = fmt.Sprintf("%s#%d", clientID, i)
		}
	}
	for i := range reqIDs {
		reqIDs[i] = reqID
	}
	t0 := s.clock.Now()
	outcomes, err := s.placer.SubmitBatchKeyed(apps, reqIDs, keys)
	elapsed := s.clock.Since(t0).Seconds()
	s.decision.Observe(elapsed)
	s.batchLat.Observe(elapsed)
	s.batchSize.Observe(float64(len(apps)))
	if err != nil {
		s.placementError(w, err)
		return
	}

	resp := BatchResponse{Results: make([]BatchTaskResult, len(outcomes))}
	for i, o := range outcomes {
		switch {
		case errors.Is(o.Err, ErrQueueFull):
			resp.Results[i] = BatchTaskResult{Rejected: true, Error: o.Err.Error()}
			resp.Rejected++
		case o.Err != nil:
			resp.Results[i] = BatchTaskResult{Error: o.Err.Error()}
			resp.Failed++
			if errors.Is(o.Err, model.ErrUnknownApp) {
				s.reg.Counter("serve.tasks_rejected_unknown_app").Inc()
			}
		default:
			resp.Results[i] = BatchTaskResult{Placement: o.Placement}
			s.reg.Counter("serve.tasks_submitted").Inc()
			if o.Placement.Status == StatusPlaced {
				resp.Placed++
				s.reg.Counter("serve.tasks_placed").Inc()
			} else {
				resp.Queued++
				s.reg.Counter("serve.tasks_queued").Inc()
			}
		}
	}
	s.reg.Counter("serve.batches").Inc()
	if resp.Rejected > 0 {
		snap := s.placer.Snapshot()
		resp.RetryAfterS = retryAfter(snap.Available, snap.Total)
		w.Header().Set("Retry-After", strconv.Itoa(resp.RetryAfterS))
		s.admission.CountRejections(resp.Rejected)
	}
	s.observeGauges()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetPlacement(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.placer.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown placement"})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var obs Observation
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&obs); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
			return
		}
	}
	rec, err := s.placer.Complete(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownPlacement):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrNotPlaced):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	case err != nil:
		// The completion itself landed; the post-completion drain failed.
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.reg.Counter("serve.tasks_completed").Inc()
	if obs.Runtime > 0 {
		s.swapper.ObserveCompletion(rec.App, rec.bg, rec.PredictedRuntime, obs)
	}
	s.observeGauges()
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleMachines(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.placer.Machines())
}

// machineOpResponse is the body of every POST /v1/machines/{id}/* verb.
type machineOpResponse struct {
	ID    int    `json:"id"`
	State string `json:"state"`
	// Requeued counts in-flight tasks sent back to the queue (kill only).
	Requeued int `json:"requeued,omitempty"`
}

func (s *Server) handleMachineOp(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad machine id %q", r.PathValue("id"))})
		return
	}
	op := path.Base(r.URL.Path)
	resp := machineOpResponse{ID: id}
	switch op {
	case "drain":
		err = s.placer.Drain(id)
		resp.State = MachineDrained
	case "undrain":
		err = s.placer.Undrain(id)
		resp.State = MachineUp
	case "kill":
		resp.Requeued, err = s.placer.Kill(id)
		resp.State = MachineDown
	case "revive":
		err = s.placer.Revive(id)
		resp.State = MachineUp
	}
	switch {
	case errors.Is(err, ErrUnknownMachine):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrBadTransition):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.reg.Counter("serve.machine_" + op).Inc()
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "machine lifecycle op",
		slog.String("req_id", RequestIDFrom(r.Context())),
		slog.String("op", op),
		slog.Int("machine", id),
		slog.Int("requeued", resp.Requeued),
	)
	s.observeGauges()
	writeJSON(w, http.StatusOK, resp)
}

// modelsResponse is the GET /v1/models body.
type modelsResponse struct {
	Kind       string      `json:"kind"`
	Generation uint64      `json:"generation"`
	Swaps      uint64      `json:"swaps"`
	DriftFires uint64      `json:"drift_fires"`
	Apps       []string    `json:"apps"`
	Cache      *CacheStats `json:"cache,omitempty"`
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	view := s.models.View()
	resp := modelsResponse{
		Kind:       view.Lib.Kind.String(),
		Generation: view.Gen,
		Swaps:      s.models.Swaps(),
		DriftFires: s.swapper.DriftFires(),
		Apps:       view.Lib.Apps(),
	}
	if s.cache != nil {
		st := s.cache.Stats()
		resp.Cache = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if err := s.swapper.TriggerSwap(); err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "model swap",
		slog.String("req_id", RequestIDFrom(r.Context())),
		slog.Uint64("generation", s.models.Generation()),
	)
	writeJSON(w, http.StatusOK, map[string]uint64{"generation": s.models.Generation()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	view := s.models.View()
	snap := s.placer.Snapshot()
	// Liveness folds in the SLO verdict: the process answers 200 either
	// way (it is alive), but the body says "degraded" while the rolling
	// window is burning latency or error budget.
	rep := s.sloReport()
	status := "ok"
	if rep.Status == obs.SLOStatusDegraded {
		status = "degraded"
	}
	body := map[string]any{
		"status":      status,
		"kind":        view.Lib.Kind.String(),
		"generation":  view.Gen,
		"apps":        view.Lib.Apps(),
		"machines":    len(s.placer.machines),
		"free_slots":  snap.FreeSlots,
		"up_machines": snap.Available / SlotsPerMachine,
		"queue_depth": snap.QueueDepth,
		"uptime_s":    s.clock.Since(s.start).Seconds(),
		"latency":     s.latency.Latency(),
		"slo": map[string]any{
			"status":            rep.Status,
			"p99_s":             rep.Latency.P99,
			"error_rate":        rep.ErrorRate,
			"error_budget_left": rep.ErrorBudgetLeft,
		},
	}
	if s.journal != nil {
		durableErr := ""
		if err := s.journal.Err(); err != nil {
			durableErr = err.Error()
			body["status"] = "degraded"
		}
		body["durable"] = map[string]any{
			"last_seq": s.journal.lastSeq(),
			"fsync":    s.journal.mgr.Fsync().String(),
			"error":    durableErr,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics content-negotiates the registry snapshot: the JSON form
// is the default (and what the repo's own tooling reads); Prometheus text
// exposition is selected by ?format=prometheus or an Accept header asking
// for text/plain, so a stock Prometheus scraper works with zero flags.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.observeGauges()
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "text/plain") {
		format = "prometheus"
	}
	switch format {
	case "", "json":
		writeJSON(w, http.StatusOK, s.reg.Snapshot())
	case "prometheus":
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		_ = obs.WritePrometheus(w, s.reg.Snapshot())
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("unknown metrics format %q (want json or prometheus)", format)})
	}
}

// observeGauges refreshes the point-in-time metrics from their owners.
// The placer's load state is read through one Snapshot so the exported
// queue depth and capacity describe the same instant.
func (s *Server) observeGauges() {
	snap := s.placer.Snapshot()
	s.reg.Gauge("serve.queue_depth").Set(float64(snap.QueueDepth))
	s.reg.Gauge("serve.free_slots").Set(float64(snap.FreeSlots))
	s.reg.Gauge("serve.available_slots").Set(float64(snap.Available))
	s.reg.Gauge("serve.total_slots").Set(float64(snap.Total))
	s.reg.Gauge("serve.generation").Set(float64(s.models.Generation()))
	s.reg.Gauge("serve.model_swaps").Set(float64(s.models.Swaps()))
	s.reg.Gauge("serve.drift_fires").Set(float64(s.swapper.DriftFires()))
	s.reg.Gauge("serve.retrain_errors").Set(float64(s.swapper.RetrainErrors()))
	s.reg.Gauge("serve.rejected").Set(float64(s.admission.Rejected()))
	if s.cache != nil {
		st := s.cache.Stats()
		s.reg.Gauge("serve.cache_hits").Set(float64(st.Hits))
		s.reg.Gauge("serve.cache_misses").Set(float64(st.Misses))
		s.reg.Gauge("serve.cache_evictions").Set(float64(st.Evictions))
		s.reg.Gauge("serve.cache_entries").Set(float64(st.Entries))
	}
}

// reject answers 429 with a retry hint and records n refused submissions
// against the admission valve — the single place a rejection is counted,
// exported as the serve.rejected gauge.
func (s *Server) reject(w http.ResponseWriter, after, n int, reason string) {
	w.Header().Set("Retry-After", strconv.Itoa(after))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: reason})
	s.admission.CountRejections(n)
}

// retryAfterCap bounds the Retry-After hint (seconds).
const retryAfterCap = 30

// retryAfter turns the capacity ratio into a backoff hint: 1s at full
// capacity, total/available seconds (rounded up) as capacity shrinks,
// capped — a zero-capacity cluster hints the cap rather than infinity.
func retryAfter(available, total int) int {
	if available <= 0 {
		return retryAfterCap
	}
	after := (total + available - 1) / available
	if after > retryAfterCap {
		after = retryAfterCap
	}
	return after
}

// placementError maps scoring-path failures onto HTTP statuses using the
// model package's typed errors: a name the library does not know is the
// caller's mistake (400); an empty library is the operator's (503);
// anything else is ours (500).
func (s *Server) placementError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, model.ErrUnknownApp):
		s.reg.Counter("serve.tasks_rejected_unknown_app").Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case errors.Is(err, model.ErrEmptyLibrary):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// writeJSON emits compact JSON: responses are machine-consumed (load
// generators, pollers), and on the submit path the encoder is a measurable
// share of per-request CPU — pipe through jq for human reading.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
