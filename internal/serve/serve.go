// Package serve is TRACON's online control plane: the long-running
// management server of Sec. 2 / Fig. 2, turned from a batch reproduction
// into a placement daemon. It loads a trained model library, owns a
// machine inventory, and answers streaming placement queries over a
// stdlib-only JSON HTTP API:
//
//	POST /v1/tasks                    submit a task for placement
//	GET  /v1/placements/{id}          placement lifecycle record
//	POST /v1/placements/{id}/complete free the slot, report the outcome
//	GET  /v1/machines                 inventory with per-VM occupancy
//	POST /v1/machines/{id}/drain      cordon: finish in-flight, accept no new
//	POST /v1/machines/{id}/undrain    return a cordoned machine to service
//	POST /v1/machines/{id}/kill       fail the machine; re-queue its tasks
//	POST /v1/machines/{id}/revive     return a dead machine to service
//	GET  /v1/models                   served family, generation, cache stats
//	POST /v1/models/swap              force a retrain-and-swap
//	GET  /healthz                     liveness + census
//	GET  /metrics                     obs.Registry snapshot (JSON)
//	/debug/pprof/*                    runtime profiling
//
// Three serving-specific mechanisms live underneath: a sharded bounded
// prediction cache so repeated co-location scoring skips regression
// evaluation (cache.go), admission control with in-flight and
// queue-depth backpressure (admission.go), and drift-triggered model
// hot-swap under an RWMutex so a retrained family replaces the served one
// without dropping requests (swap.go).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"path"
	"strconv"
	"time"

	"tracon/internal/model"
	"tracon/internal/monitor"
	"tracon/internal/obs"
	"tracon/internal/sched"
)

// Config assembles a Server.
type Config struct {
	// Machines is the inventory size (two VMs each).
	Machines int
	// Policy is the scheduling policy: "mios" (default), "fifo", "mibs",
	// "mix". QueueLen is the batch size for the batch policies.
	Policy   string
	QueueLen int
	// Objective selects the optimization target (default MinRuntime).
	Objective sched.Objective
	// MaxInflight bounds concurrent submissions (DefaultMaxInflight if 0).
	MaxInflight int
	// MaxQueue bounds the backlog; beyond it submissions get 429. Zero
	// defaults to 4 tasks per VM; negative disables the bound.
	MaxQueue int
	// CacheCap is the prediction cache's per-shard entry bound
	// (DefaultCacheCap if 0). DisableCache scores without memoization —
	// the reference path the cache is validated against.
	CacheCap     int
	DisableCache bool
	// Retrain, when set, enables drift-triggered and manual hot-swap.
	Retrain Retrainer
	// Drift tunes the detector; zero values take monitor defaults.
	Drift monitor.DriftConfig
	// SyncRetrain runs retrains on the completing request's goroutine
	// instead of asynchronously (deterministic tests and walkthroughs).
	SyncRetrain bool
	// CompletedCap bounds retained finished placement records.
	CompletedCap int
}

// Server is the tracond daemon core, constructed over a trained library.
type Server struct {
	cfg       Config
	models    *ModelSet
	placer    *Placer
	swapper   *SwapManager
	admission *Admission
	cache     *PredCache // nil when disabled

	reg      *obs.Registry
	latency  *obs.Histogram
	decision *obs.Histogram
	start    time.Time
}

// New builds a Server serving placements from lib.
func New(lib *model.Library, cfg Config) (*Server, error) {
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("serve: config needs Machines > 0")
	}
	var cache *PredCache
	if !cfg.DisableCache {
		cache = NewPredCache(cfg.CacheCap)
	}
	ms, err := NewModelSet(lib, cfg.Policy, cfg.QueueLen, cfg.Objective, cache)
	if err != nil {
		return nil, err
	}
	placer, err := NewPlacer(ms, cfg.Machines, cfg.CompletedCap)
	if err != nil {
		return nil, err
	}
	maxQueue := cfg.MaxQueue
	if maxQueue == 0 {
		maxQueue = 4 * SlotsPerMachine * cfg.Machines
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:       cfg,
		models:    ms,
		placer:    placer,
		swapper:   NewSwapManager(ms, cfg.Retrain, cfg.Drift, cfg.SyncRetrain),
		admission: NewAdmission(cfg.MaxInflight, maxQueue),
		cache:     cache,
		reg:       reg,
		latency:   reg.Histogram("serve.request_seconds", obs.DefaultLatencyBuckets()),
		decision:  reg.Histogram("serve.decision_seconds", obs.DefaultLatencyBuckets()),
		start:     time.Now(),
	}
	return s, nil
}

// ModelSet exposes the hot-swap surface (tests, tracond's admin paths).
func (s *Server) ModelSet() *ModelSet { return s.models }

// Placer exposes the inventory (tests).
func (s *Server) Placer() *Placer { return s.placer }

// Swapper exposes the drift loop (tests, tracond).
func (s *Server) Swapper() *SwapManager { return s.swapper }

// Registry exposes the metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// CheckInvariants delegates to the placer.
func (s *Server) CheckInvariants() error { return s.placer.CheckInvariants() }

// Drain waits for background work (async retrains) to finish; call after
// the HTTP listener has shut down.
func (s *Server) Drain() { s.swapper.Wait() }

// Handler builds the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tasks", s.timed(s.handleSubmit))
	mux.HandleFunc("GET /v1/placements/{id}", s.timed(s.handleGetPlacement))
	mux.HandleFunc("POST /v1/placements/{id}/complete", s.timed(s.handleComplete))
	mux.HandleFunc("GET /v1/machines", s.timed(s.handleMachines))
	mux.HandleFunc("POST /v1/machines/{id}/drain", s.timed(s.handleMachineOp))
	mux.HandleFunc("POST /v1/machines/{id}/undrain", s.timed(s.handleMachineOp))
	mux.HandleFunc("POST /v1/machines/{id}/kill", s.timed(s.handleMachineOp))
	mux.HandleFunc("POST /v1/machines/{id}/revive", s.timed(s.handleMachineOp))
	mux.HandleFunc("GET /v1/models", s.timed(s.handleModels))
	mux.HandleFunc("POST /v1/models/swap", s.timed(s.handleSwap))
	mux.HandleFunc("GET /healthz", s.timed(s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.timed(s.handleMetrics))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// timed wraps a handler with request-latency recording.
func (s *Server) timed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		s.latency.Observe(time.Since(t0).Seconds())
		s.reg.Counter("serve.http_requests").Inc()
	}
}

// submitRequest is the POST /v1/tasks body.
type submitRequest struct {
	App string `json:"app"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.admission.TryAcquire() {
		s.reject(w, 1, "too many in-flight submissions")
		return
	}
	defer s.admission.Release()
	// The queue bound scales with schedulable capacity: a degraded cluster
	// sheds load early, and the Retry-After hint stretches as capacity
	// shrinks so clients back off harder the worse things are.
	available, total := s.placer.Capacity()
	if s.admission.QueueFullScaled(s.placer.QueueDepth(), available, total) {
		reason := "placement queue is full"
		if available == 0 {
			reason = "no machines in service"
		}
		s.reject(w, retryAfter(available, total), reason)
		return
	}
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if req.App == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing \"app\""})
		return
	}
	t0 := time.Now()
	rec, err := s.placer.Submit(req.App)
	s.decision.Observe(time.Since(t0).Seconds())
	if err != nil {
		s.placementError(w, err)
		return
	}
	s.reg.Counter("serve.tasks_submitted").Inc()
	if rec.Status == StatusPlaced {
		s.reg.Counter("serve.tasks_placed").Inc()
	} else {
		s.reg.Counter("serve.tasks_queued").Inc()
	}
	s.observeGauges()
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleGetPlacement(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.placer.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown placement"})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var obs Observation
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&obs); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
			return
		}
	}
	rec, err := s.placer.Complete(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownPlacement):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrNotPlaced):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	case err != nil:
		// The completion itself landed; the post-completion drain failed.
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.reg.Counter("serve.tasks_completed").Inc()
	if obs.Runtime > 0 {
		s.swapper.ObserveCompletion(rec.App, rec.bg, rec.PredictedRuntime, obs)
	}
	s.observeGauges()
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleMachines(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.placer.Machines())
}

// machineOpResponse is the body of every POST /v1/machines/{id}/* verb.
type machineOpResponse struct {
	ID    int    `json:"id"`
	State string `json:"state"`
	// Requeued counts in-flight tasks sent back to the queue (kill only).
	Requeued int `json:"requeued,omitempty"`
}

func (s *Server) handleMachineOp(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad machine id %q", r.PathValue("id"))})
		return
	}
	op := path.Base(r.URL.Path)
	resp := machineOpResponse{ID: id}
	switch op {
	case "drain":
		err = s.placer.Drain(id)
		resp.State = MachineDrained
	case "undrain":
		err = s.placer.Undrain(id)
		resp.State = MachineUp
	case "kill":
		resp.Requeued, err = s.placer.Kill(id)
		resp.State = MachineDown
	case "revive":
		err = s.placer.Revive(id)
		resp.State = MachineUp
	}
	switch {
	case errors.Is(err, ErrUnknownMachine):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrBadTransition):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.reg.Counter("serve.machine_" + op).Inc()
	s.observeGauges()
	writeJSON(w, http.StatusOK, resp)
}

// modelsResponse is the GET /v1/models body.
type modelsResponse struct {
	Kind       string      `json:"kind"`
	Generation uint64      `json:"generation"`
	Swaps      uint64      `json:"swaps"`
	DriftFires uint64      `json:"drift_fires"`
	Apps       []string    `json:"apps"`
	Cache      *CacheStats `json:"cache,omitempty"`
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	view := s.models.View()
	resp := modelsResponse{
		Kind:       view.Lib.Kind.String(),
		Generation: view.Gen,
		Swaps:      s.models.Swaps(),
		DriftFires: s.swapper.DriftFires(),
		Apps:       view.Lib.Apps(),
	}
	if s.cache != nil {
		st := s.cache.Stats()
		resp.Cache = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSwap(w http.ResponseWriter, _ *http.Request) {
	if err := s.swapper.TriggerSwap(); err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"generation": s.models.Generation()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	view := s.models.View()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"kind":        view.Lib.Kind.String(),
		"generation":  view.Gen,
		"apps":        view.Lib.Apps(),
		"machines":    len(s.placer.machines),
		"free_slots":  s.placer.FreeSlots(),
		"up_machines": upMachines(s.placer),
		"queue_depth": s.placer.QueueDepth(),
		"uptime_s":    time.Since(s.start).Seconds(),
		"latency":     s.latency.Latency(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.observeGauges()
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// observeGauges refreshes the point-in-time metrics from their owners.
func (s *Server) observeGauges() {
	s.reg.Gauge("serve.queue_depth").Set(float64(s.placer.QueueDepth()))
	s.reg.Gauge("serve.free_slots").Set(float64(s.placer.FreeSlots()))
	available, total := s.placer.Capacity()
	s.reg.Gauge("serve.available_slots").Set(float64(available))
	s.reg.Gauge("serve.total_slots").Set(float64(total))
	s.reg.Gauge("serve.generation").Set(float64(s.models.Generation()))
	s.reg.Gauge("serve.model_swaps").Set(float64(s.models.Swaps()))
	s.reg.Gauge("serve.drift_fires").Set(float64(s.swapper.DriftFires()))
	s.reg.Gauge("serve.retrain_errors").Set(float64(s.swapper.RetrainErrors()))
	s.reg.Gauge("serve.admission_rejected").Set(float64(s.admission.Rejected()))
	if s.cache != nil {
		st := s.cache.Stats()
		s.reg.Gauge("serve.cache_hits").Set(float64(st.Hits))
		s.reg.Gauge("serve.cache_misses").Set(float64(st.Misses))
		s.reg.Gauge("serve.cache_evictions").Set(float64(st.Evictions))
		s.reg.Gauge("serve.cache_entries").Set(float64(st.Entries))
	}
}

// reject answers 429 with a retry hint.
func (s *Server) reject(w http.ResponseWriter, after int, reason string) {
	w.Header().Set("Retry-After", strconv.Itoa(after))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: reason})
	s.reg.Counter("serve.tasks_rejected").Inc()
}

// retryAfterCap bounds the Retry-After hint (seconds).
const retryAfterCap = 30

// retryAfter turns the capacity ratio into a backoff hint: 1s at full
// capacity, total/available seconds (rounded up) as capacity shrinks,
// capped — a zero-capacity cluster hints the cap rather than infinity.
func retryAfter(available, total int) int {
	if available <= 0 {
		return retryAfterCap
	}
	after := (total + available - 1) / available
	if after > retryAfterCap {
		after = retryAfterCap
	}
	return after
}

// placementError maps scoring-path failures onto HTTP statuses using the
// model package's typed errors: a name the library does not know is the
// caller's mistake (400); an empty library is the operator's (503);
// anything else is ours (500).
func (s *Server) placementError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, model.ErrUnknownApp):
		s.reg.Counter("serve.tasks_rejected_unknown_app").Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case errors.Is(err, model.ErrEmptyLibrary):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// upMachines counts the machines currently in service.
func upMachines(p *Placer) int {
	available, _ := p.Capacity()
	return available / SlotsPerMachine
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
