package tracon

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one Benchmark per exhibit) and adds ablation benches for the
// design choices DESIGN.md calls out. Key reproduced quantities are
// attached to each bench via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// doubles as the experiment log. The heavyweight dynamic sweeps run with
// reduced dimensions here; cmd/traconbench runs them at paper scale.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"tracon/internal/experiments"
	"tracon/internal/model"
	"tracon/internal/sched"
	"tracon/internal/workload"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

func experimentEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		e, err := experiments.NewEnv(1)
		if err != nil {
			panic(err)
		}
		benchEnv = e
	})
	return benchEnv
}

// BenchmarkTable1 regenerates Table 1 (interference characterization).
func BenchmarkTable1(b *testing.B) {
	e := experimentEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows["seqread"][1], "seqread-vs-io-high-x")
		b.ReportMetric(res.Rows["seqread"][3], "seqread-vs-both-high-x")
	}
}

// BenchmarkFig3Runtime regenerates Fig 3(a): runtime prediction errors.
func BenchmarkFig3Runtime(b *testing.B) {
	e := experimentEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanError(model.Runtime, model.NLM)*100, "nlm-err-%")
		b.ReportMetric(res.MeanError(model.Runtime, model.LM)*100, "lm-err-%")
		b.ReportMetric(res.MeanError(model.Runtime, model.WMM)*100, "wmm-err-%")
	}
}

// BenchmarkFig3IOPS regenerates Fig 3(b): IOPS prediction errors.
func BenchmarkFig3IOPS(b *testing.B) {
	e := experimentEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanError(model.IOPS, model.NLM)*100, "nlm-err-%")
		b.ReportMetric(res.MeanError(model.IOPS, model.LM)*100, "lm-err-%")
		b.ReportMetric(res.MeanError(model.IOPS, model.WMM)*100, "wmm-err-%")
	}
}

// BenchmarkFig4 regenerates Fig 4: scheduling with different models.
func BenchmarkFig4(b *testing.B) {
	e := experimentEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(e, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup[model.NLM].Mean, "nlm-speedup")
		b.ReportMetric(res.IOBoost[model.NLM].Mean, "nlm-ioboost")
	}
}

// BenchmarkFig5 regenerates Fig 5: predicted minimum runtimes.
func BenchmarkFig5(b *testing.B) {
	e := experimentEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(e)
		if err != nil {
			b.Fatal(err)
		}
		// Mean ratio of predicted min to measured min across apps.
		sum := 0.0
		for _, r := range res.Rows {
			sum += r.PredictedMin / r.MeasuredMin
		}
		b.ReportMetric(sum/float64(len(res.Rows)), "predmin/measmin")
	}
}

// BenchmarkFig6 regenerates Fig 6: predicted maximum IOPS.
func BenchmarkFig6(b *testing.B) {
	e := experimentEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(e)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range res.Rows {
			sum += r.PredictedMax / r.MeasuredMax
		}
		b.ReportMetric(sum/float64(len(res.Rows)), "predmax/measmax")
	}
}

// BenchmarkFig7 regenerates Fig 7: online model learning.
func BenchmarkFig7(b *testing.B) {
	e := experimentEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.InitialErr*100, "initial-err-%")
		b.ReportMetric(res.ShockErr*100, "shock-err-%")
		b.ReportMetric(res.FinalErr*100, "final-err-%")
	}
}

// BenchmarkFig8 regenerates Fig 8: static-workload speedups (reduced
// machine range under -short).
func BenchmarkFig8(b *testing.B) {
	e := experimentEnv(b)
	machines := []int{8, 64, 256, 1024}
	if testing.Short() {
		machines = []int{8, 64}
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(e, machines, 3)
		if err != nil {
			b.Fatal(err)
		}
		if c, ok := res.Cell(machines[len(machines)-1], workload.MediumIO); ok {
			b.ReportMetric(c.SpeedupRT, "medium-speedup")
			b.ReportMetric(c.IOBoost, "medium-ioboost")
		}
	}
}

// benchDynamic shares the reduced dynamic dimensions of Figs 9–12.
func benchDynamicDims() (lambdas []float64, hours float64, machines []int) {
	if testing.Short() {
		return []float64{2, 50}, 1, []int{8, 64}
	}
	return []float64{2, 10, 50, 100}, 2, []int{8, 64, 256}
}

// BenchmarkFig9 regenerates Fig 9: schedulers vs arrival rate.
func BenchmarkFig9(b *testing.B) {
	e := experimentEnv(b)
	lambdas, hours, _ := benchDynamicDims()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(e, lambdas, hours)
		if err != nil {
			b.Fatal(err)
		}
		if c, ok := res.Cell("MIBS8", 64, lambdas[len(lambdas)-1], workload.MediumIO); ok {
			b.ReportMetric(c.Normalized, "mibs8-vs-fifo")
		}
		if c, ok := res.Cell("MIX8", 64, lambdas[len(lambdas)-1], workload.MediumIO); ok {
			b.ReportMetric(c.Normalized, "mix8-vs-fifo")
		}
	}
}

// BenchmarkFig10 regenerates Fig 10: MIBS queue lengths vs arrival rate.
func BenchmarkFig10(b *testing.B) {
	e := experimentEnv(b)
	lambdas, hours, _ := benchDynamicDims()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(e, lambdas, hours)
		if err != nil {
			b.Fatal(err)
		}
		lam := lambdas[len(lambdas)-1]
		if c, ok := res.Cell("MIBS8", 64, lam, workload.MediumIO); ok {
			b.ReportMetric(c.Normalized, "mibs8-vs-fifo")
		}
		if c, ok := res.Cell("MIBS2", 64, lam, workload.MediumIO); ok {
			b.ReportMetric(c.Normalized, "mibs2-vs-fifo")
		}
	}
}

// BenchmarkFig11 regenerates Fig 11: scalability at λ=1000/min.
func BenchmarkFig11(b *testing.B) {
	e := experimentEnv(b)
	_, hours, machines := benchDynamicDims()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(e, machines, hours)
		if err != nil {
			b.Fatal(err)
		}
		m := machines[len(machines)-1]
		if c, ok := res.Cell("MIBS8", m, 1000, workload.MediumIO); ok {
			b.ReportMetric(c.Normalized, "mibs8-vs-fifo")
		}
	}
}

// BenchmarkFig12 regenerates Fig 12: MIBS queue lengths vs machines.
func BenchmarkFig12(b *testing.B) {
	e := experimentEnv(b)
	_, hours, machines := benchDynamicDims()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(e, machines, hours)
		if err != nil {
			b.Fatal(err)
		}
		m := machines[len(machines)-1]
		if c, ok := res.Cell("MIBS8", m, 1000, workload.MediumIO); ok {
			b.ReportMetric(c.Normalized, "mibs8-vs-fifo")
		}
	}
}

// BenchmarkSpotCheck10k regenerates the Sec 4.8 claim on 10,000 machines
// through the manager hierarchy (skipped under -short).
func BenchmarkSpotCheck10k(b *testing.B) {
	if testing.Short() {
		b.Skip("10,000-machine run skipped under -short")
	}
	e := experimentEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.SpotCheck10k(e, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Normalized, "mibs8-vs-fifo")
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out. ---

// staticSpeedup measures MIBS-over-FIFO speedup for a given scorer setup.
func staticSpeedup(b *testing.B, e *experiments.Env, scorer *sched.Scorer) float64 {
	b.Helper()
	var fifoTotal, mibsTotal float64
	for seed := int64(1); seed <= 6; seed++ {
		mixer := workload.NewMixer(seed)
		batch := mixer.Batch(workload.MediumIO, 32)
		tasks := make([]sched.Task, len(batch))
		for i, spec := range batch {
			tasks[i] = sched.Task{ID: int64(i), App: workload.BaseName(spec.Name)}
		}
		fifo, err := e.RunStaticPublic(sched.FIFO{}, 16, tasks)
		if err != nil {
			b.Fatal(err)
		}
		mibs, err := e.RunStaticPublic(&sched.MIBS{Scorer: scorer, QueueLen: len(tasks)}, 16, tasks)
		if err != nil {
			b.Fatal(err)
		}
		fifoTotal += fifo.TotalRuntime
		mibsTotal += mibs.TotalRuntime
	}
	return fifoTotal / mibsTotal
}

// BenchmarkAblationOracleVsNLM compares the trained NLM scheduler against
// the ground-truth oracle — how much headroom better models would buy.
func BenchmarkAblationOracleVsNLM(b *testing.B) {
	e := experimentEnv(b)
	for i := 0; i < b.N; i++ {
		nlm := staticSpeedup(b, e, sched.NewScorer(e.Libraries[model.NLM], sched.MinRuntime))
		oracle := staticSpeedup(b, e, sched.NewScorer(e.Oracle, sched.MinRuntime))
		b.ReportMetric(nlm, "nlm-speedup")
		b.ReportMetric(oracle, "oracle-speedup")
	}
}

// BenchmarkAblationDom0Feature quantifies the paper's fourth-parameter
// claim: NLM trained without the Dom0 CPU characteristic.
func BenchmarkAblationDom0Feature(b *testing.B) {
	e := experimentEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(e)
		if err != nil {
			b.Fatal(err)
		}
		with := res.MeanError(model.Runtime, model.NLM)
		without := res.MeanError(model.Runtime, model.NLMNoDom0)
		b.ReportMetric(with*100, "with-dom0-err-%")
		b.ReportMetric(without*100, "without-dom0-err-%")
		b.ReportMetric(without/with, "error-inflation-x")
	}
}

// BenchmarkAblationQueueLength sweeps the MIBS batch length beyond the
// paper's 2/4/8 to show diminishing returns.
func BenchmarkAblationQueueLength(b *testing.B) {
	e := experimentEnv(b)
	for i := 0; i < b.N; i++ {
		for _, q := range []int{1, 2, 4, 8, 16} {
			cells, err := experiments.RunQueueLength(e, q, 64, 50, 2*3600)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(cells, "q"+itoa(q)+"-vs-fifo")
		}
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

// BenchmarkStorageStudy runs the future-work device comparison: how
// violent interference is per device class and how much scheduling
// recovers on each.
func BenchmarkStorageStudy(b *testing.B) {
	e := experimentEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.StorageStudy(e)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.MIBSSpeedup, row.Device+"-speedup")
		}
	}
}

// BenchmarkAblationForestModel compares the future-work regression-forest
// model against the paper's NLM on cross-validated prediction error.
func BenchmarkAblationForestModel(b *testing.B) {
	e := experimentEnv(b)
	for i := 0; i < b.N; i++ {
		for _, k := range []model.Kind{model.NLM, model.Forest} {
			tot := 0.0
			for _, app := range e.BenchmarkNames() {
				errs, err := model.CrossValidate(e.TrainingSets[app], k, model.Runtime, 5)
				if err != nil {
					b.Fatal(err)
				}
				m, _ := model.ErrorSummary(errs)
				tot += m
			}
			name := "nlm"
			if k == model.Forest {
				name = "forest"
			}
			b.ReportMetric(tot/float64(len(e.BenchmarkNames()))*100, name+"-rt-err-%")
		}
	}
}

// --- Parallel evaluation engine benches. ---
//
// These quantify the worker-pool speedup of the parallel Env build and
// experiment fan-out. On a single-core host they record ~parity (the pool
// degrades to interleaved execution); with GOMAXPROCS ≥ 4 the parallel
// variants should win roughly linearly until profiling becomes
// memory-bound. Both variants produce byte-identical results — see
// TestNewEnvParallelMatchesSequential.

// BenchmarkNewEnvSequential measures the one-worker Env build: profiling
// every benchmark, training three libraries and solving the n² pair table.
func BenchmarkNewEnvSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewEnvParallel(1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewEnvParallel measures the same build fanned across a
// GOMAXPROCS-wide worker pool (at least 4 so the shape of the fan-out is
// exercised even on small hosts).
func BenchmarkNewEnvParallel(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewEnvParallel(1, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRunnerSuite is the experiment slice the Runner benches fan out:
// one table plus two figure experiments of distinct cost profiles.
func benchRunnerSuite() []experiments.Experiment {
	return []experiments.Experiment{
		{Name: "table1", Run: func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Table1(e) }},
		{Name: "fig4", Run: func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Fig4(e, 4) }},
		{Name: "fig9", Run: func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Fig9(e, []float64{2, 50}, 1) }},
	}
}

// BenchmarkRunnerSequential runs the slice on one worker.
func BenchmarkRunnerSequential(b *testing.B) {
	e := experimentEnv(b)
	suite := benchRunnerSuite()
	for i := 0; i < b.N; i++ {
		for _, oc := range (experiments.Runner{Workers: 1}).Run(e, suite) {
			if oc.Err != nil {
				b.Fatal(oc.Err)
			}
		}
	}
}

// BenchmarkRunnerParallel fans the same slice across the worker pool.
func BenchmarkRunnerParallel(b *testing.B) {
	e := experimentEnv(b)
	suite := benchRunnerSuite()
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for i := 0; i < b.N; i++ {
		for _, oc := range (experiments.Runner{Workers: workers}).Run(e, suite) {
			if oc.Err != nil {
				b.Fatal(oc.Err)
			}
		}
	}
}

// BenchmarkSchedulerOverhead measures the decision cost of each policy —
// the paper's stated trade-off (MIOS cheapest, MIX most expensive).
func BenchmarkSchedulerOverhead(b *testing.B) {
	e := experimentEnv(b)
	scorer := sched.NewScorer(e.Libraries[model.NLM], sched.MinRuntime)
	batch := make([]sched.Task, 8)
	mixer := workload.NewMixer(1)
	for i := range batch {
		batch[i] = sched.Task{ID: int64(i), App: workload.BaseName(mixer.Batch(workload.MediumIO, 1)[0].Name)}
	}
	counts := sched.Counts{sched.EmptyCategory: 8, "video": 2, "email": 2, "blastn": 2}
	load := sched.Load{TotalSlots: 32, Queued: 8}
	for _, s := range []sched.Scheduler{
		sched.FIFO{},
		&sched.MIOS{Scorer: scorer},
		&sched.MIBS{Scorer: scorer, QueueLen: 8},
		&sched.MIX{Scorer: scorer, QueueLen: 8},
	} {
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(batch, counts.Clone(), load); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
