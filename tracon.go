// Package tracon is a from-scratch Go implementation of TRACON, the
// interference-aware Task and Resource Allocation CONtrol framework for
// data-intensive applications in virtualized environments (Chiang & Huang,
// SC 2011).
//
// The package bundles everything the paper describes: a calibrated
// Xen-like host testbed (driver-domain I/O routing, credit-scheduled CPU,
// HDD/iSCSI/SSD device models), the statistical-learning stack (weighted
// mean method, linear and nonlinear models with AIC stepwise selection and
// Gauss-Newton fitting), the interference-aware schedulers (MIOS, MIBS,
// MIX against a FIFO baseline), the task and resource monitor with online
// model adaptation, and a discrete-event data-center simulator that scales
// to 10,000 machines.
//
// Quick start:
//
//	sys, err := tracon.New(tracon.Config{})
//	...
//	err = sys.RegisterBenchmarks()            // profile + train models
//	rt, err := sys.PredictRuntime("blastn", "video")
//	rep, err := sys.RunStatic(tracon.Policy{Name: "mibs", QueueLen: 8}, 16, nil)
//
// See the examples/ directory for complete programs.
package tracon

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"tracon/internal/core"
	"tracon/internal/model"
	"tracon/internal/sched"
	"tracon/internal/workload"
	"tracon/internal/xen"
)

// ModelKind names an interference-model family.
type ModelKind string

// Model families (Sec. 3.1). NLM is the paper's recommendation; ForestKind
// is this implementation's future-work extension (a bagged regression-tree
// ensemble).
const (
	WMM        ModelKind = "wmm"
	LM         ModelKind = "lm"
	NLM        ModelKind = "nlm"
	ForestKind ModelKind = "forest"
)

// Storage names a device model for the simulated testbed.
type Storage string

// Storage devices. HDD is the paper's testbed; ISCSI is the Fig 7
// migration target; SSD is the future-work device.
const (
	HDD   Storage = "hdd"
	ISCSI Storage = "iscsi"
	SSD   Storage = "ssd"
)

// Objective selects what a scheduler optimizes.
type Objective string

// Objectives: MIBS_RT minimizes total runtime, MIBS_IO maximizes IOPS.
const (
	MinRuntime Objective = "runtime"
	MaxIOPS    Objective = "iops"
)

// Mix names a workload I/O-intensity mix (Sec. 4.1).
type Mix string

// The three mixes.
const (
	Light  Mix = "light"
	Medium Mix = "medium"
	Heavy  Mix = "heavy"
)

// Policy names a scheduling policy.
type Policy struct {
	// Name is "fifo", "mios", "mibs" or "mix".
	Name string
	// QueueLen is the batch length for mibs/mix (paper: 2, 4, 8).
	QueueLen int
	// Objective defaults to MinRuntime.
	Objective Objective
	// Oracle swaps trained models for ground truth (upper-bound ablation).
	Oracle bool
}

// Config configures a System.
type Config struct {
	// Model selects the deployed family (default NLM).
	Model ModelKind
	// Storage selects the device (default HDD).
	Storage Storage
	// Seed fixes all randomness (default 1).
	Seed int64
	// MeasurementRuns is the repetitions averaged per measurement
	// (default 3, as in the paper).
	MeasurementRuns int
	// Noise is the per-run multiplicative measurement noise σ
	// (default 0.05).
	Noise float64
}

// System is a TRACON deployment: testbed, models, monitor, schedulers and
// simulator behind one façade.
type System struct {
	ctrl *core.Controller
	cfg  Config
}

// New builds an empty System; register applications before predicting or
// simulating.
func New(cfg Config) (*System, error) {
	if cfg.Model == "" {
		cfg.Model = NLM
	}
	if cfg.Storage == "" {
		cfg.Storage = HDD
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MeasurementRuns == 0 {
		cfg.MeasurementRuns = 3
	}
	if cfg.Noise == 0 {
		cfg.Noise = 0.05
	}
	kind, err := kindOf(cfg.Model)
	if err != nil {
		return nil, err
	}
	host := xen.DefaultHost()
	switch cfg.Storage {
	case HDD:
		host.Disk = xen.HDD()
	case ISCSI:
		host.Disk = xen.ISCSI()
	case SSD:
		host.Disk = xen.SSD()
	default:
		return nil, fmt.Errorf("tracon: unknown storage %q", cfg.Storage)
	}
	ctrl, err := core.New(core.Config{
		Host:             host,
		MeasurementRuns:  cfg.MeasurementRuns,
		MeasurementNoise: cfg.Noise,
		Seed:             cfg.Seed,
		Kind:             kind,
		Adaptive:         model.DefaultAdaptive(),
	})
	if err != nil {
		return nil, err
	}
	return &System{ctrl: ctrl, cfg: cfg}, nil
}

func kindOf(m ModelKind) (model.Kind, error) {
	switch m {
	case WMM:
		return model.WMM, nil
	case LM:
		return model.LM, nil
	case NLM:
		return model.NLM, nil
	case ForestKind:
		return model.Forest, nil
	default:
		return 0, fmt.Errorf("tracon: unknown model kind %q", m)
	}
}

func objectiveOf(o Objective) (sched.Objective, error) {
	switch o {
	case "", MinRuntime:
		return sched.MinRuntime, nil
	case MaxIOPS:
		return sched.MaxIOPS, nil
	default:
		return 0, fmt.Errorf("tracon: unknown objective %q", o)
	}
}

func mixOf(m Mix) (workload.IOIntensity, error) {
	switch m {
	case Light:
		return workload.LightIO, nil
	case "", Medium:
		return workload.MediumIO, nil
	case Heavy:
		return workload.HeavyIO, nil
	default:
		return 0, fmt.Errorf("tracon: unknown mix %q", m)
	}
}

func (s *System) schedulerSpec(p Policy) (core.SchedulerSpec, error) {
	obj, err := objectiveOf(p.Objective)
	if err != nil {
		return core.SchedulerSpec{}, err
	}
	name := p.Name
	if name == "" {
		name = "fifo"
	}
	q := p.QueueLen
	if q <= 0 {
		q = 8
	}
	return core.SchedulerSpec{Policy: name, QueueLen: q, Objective: obj, UseOracle: p.Oracle}, nil
}

// RegisterBenchmarks profiles and trains models for the paper's eight
// data-intensive benchmarks (Table 3). This is the expensive bring-up
// call: 8 applications × 125 profiling workloads.
func (s *System) RegisterBenchmarks() error {
	return s.ctrl.RegisterBenchmarks()
}

// App describes a custom application for RegisterApp.
type App struct {
	Name string
	// CPUSeconds of computation, ReadOps/WriteOps requests of ReqSizeKB at
	// sequentiality Seq (0..1), ThinkSeconds idle, with up to IODepth
	// requests in flight.
	CPUSeconds   float64
	ReadOps      float64
	WriteOps     float64
	ReqSizeKB    float64
	Seq          float64
	ThinkSeconds float64
	IODepth      float64
}

// RegisterApp profiles and trains a model for a custom application.
func (s *System) RegisterApp(a App) error {
	return s.ctrl.Register(xen.AppSpec{
		Name:         a.Name,
		CPUSeconds:   a.CPUSeconds,
		ReadOps:      a.ReadOps,
		WriteOps:     a.WriteOps,
		ReqSizeKB:    a.ReqSizeKB,
		Seq:          a.Seq,
		ThinkSeconds: a.ThinkSeconds,
		MaxIODepth:   a.IODepth,
	})
}

// Apps lists the registered applications.
func (s *System) Apps() []string { return s.ctrl.Apps() }

// PredictRuntime predicts target's runtime (seconds) when co-located with
// corunner ("" = idle neighbour), using the trained models.
func (s *System) PredictRuntime(target, corunner string) (float64, error) {
	return s.ctrl.Library().PredictRuntime(target, corunner)
}

// PredictIOPS predicts target's throughput under the co-location.
func (s *System) PredictIOPS(target, corunner string) (float64, error) {
	return s.ctrl.Library().PredictIOPS(target, corunner)
}

// SoloRuntime returns the measured no-interference runtime.
func (s *System) SoloRuntime(target string) (float64, error) {
	return s.ctrl.Library().SoloRuntime(target)
}

// ModelError cross-validates the deployed model family on an application's
// interference profile and returns the paper's error metric (mean relative
// error and its standard deviation).
func (s *System) ModelError(app string, obj Objective) (mean, stddev float64, err error) {
	ts, err := s.ctrl.TrainingSet(app)
	if err != nil {
		return 0, 0, err
	}
	kind, err := kindOf(s.cfg.Model)
	if err != nil {
		return 0, 0, err
	}
	resp := model.Runtime
	if obj == MaxIOPS {
		resp = model.IOPS
	}
	errs, err := model.CrossValidate(ts, kind, resp, 5)
	if err != nil {
		return 0, 0, err
	}
	mean, stddev = model.ErrorSummary(errs)
	return mean, stddev, nil
}

// Observe runs one production co-run measurement of target against a
// registered background application and feeds it to the online adaptation
// loop; it reports whether the model was rebuilt.
func (s *System) Observe(target, background string) (rebuilt bool, err error) {
	tSpec, err := s.ctrl.Spec(target)
	if err != nil {
		return false, err
	}
	bSpec, err := s.ctrl.Spec(background)
	if err != nil {
		return false, err
	}
	sample, err := s.ctrl.Monitor().ObserveCoRun(tSpec, bSpec)
	if err != nil {
		return false, err
	}
	return s.ctrl.Observe(target, sample)
}

// AdaptationStats reports the state of an application's online-learning
// loop: how many production observations it has absorbed, its mean
// prediction error over the most recent n observations, and how many times
// the model has been rebuilt.
func (s *System) AdaptationStats(app string, n int) (observations int, recentErr float64, rebuilds int, err error) {
	ad, err := s.ctrl.Adaptive(app)
	if err != nil {
		return 0, 0, 0, err
	}
	return len(ad.RuntimeErrors), ad.RecentError(n), len(ad.Rebuilds), nil
}

// Report summarizes a simulation run.
type Report struct {
	Scheduler    string
	Machines     int
	Submitted    int
	Completed    int
	TotalRuntime float64 // Σ task runtimes (eq. 3)
	TotalIOPS    float64 // Σ task throughputs (eq. 4)
	MeanRuntime  float64
	MeanWait     float64
	Horizon      float64
}

// RunStatic runs the static-workload scenario (Sec. 4.2): one task per VM,
// all present at time zero, scheduled as one batch. apps may name the task
// list explicitly; when nil, 2×machines tasks are drawn from the medium
// mix with the system seed.
func (s *System) RunStatic(p Policy, machines int, apps []string) (Report, error) {
	return s.RunStaticMix(p, machines, apps, Medium)
}

// RunStaticMix is RunStatic with an explicit workload mix for the drawn
// tasks.
func (s *System) RunStaticMix(p Policy, machines int, apps []string, mix Mix) (Report, error) {
	if machines <= 0 {
		return Report{}, fmt.Errorf("tracon: machines must be positive")
	}
	if apps == nil {
		m, err := mixOf(mix)
		if err != nil {
			return Report{}, err
		}
		mixer := workload.NewMixer(s.cfg.Seed)
		for _, spec := range mixer.Batch(m, 2*machines) {
			apps = append(apps, workload.BaseName(spec.Name))
		}
	}
	tasks := make([]sched.Task, len(apps))
	for i, a := range apps {
		tasks[i] = sched.Task{ID: int64(i), App: a}
	}
	spec, err := s.schedulerSpec(p)
	if err != nil {
		return Report{}, err
	}
	// Static scheduling considers the whole list as one batch.
	if spec.Policy == "mibs" || spec.Policy == "mix" {
		spec.QueueLen = len(tasks)
	}
	res, err := s.ctrl.Simulate(spec, machines, tasks, math.Inf(1))
	if err != nil {
		return Report{}, err
	}
	return Report{
		Scheduler:    res.Scheduler,
		Machines:     machines,
		Submitted:    res.Submitted,
		Completed:    res.CompletedCount,
		TotalRuntime: res.TotalRuntime,
		TotalIOPS:    res.TotalIOPS,
		MeanRuntime:  res.MeanRuntime(),
		MeanWait:     res.MeanWait(),
		Horizon:      res.Horizon,
	}, nil
}

// RunDynamic runs the dynamic-workload scenario (Sec. 4.7): Poisson
// arrivals at lambda tasks/minute from the given mix, over horizonHours.
func (s *System) RunDynamic(p Policy, machines int, lambda, horizonHours float64, mix Mix) (Report, error) {
	if machines <= 0 || lambda <= 0 || horizonHours <= 0 {
		return Report{}, fmt.Errorf("tracon: machines, lambda and horizon must be positive")
	}
	m, err := mixOf(mix)
	if err != nil {
		return Report{}, err
	}
	horizon := horizonHours * 3600
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	times := workload.Arrivals(rng, lambda, horizon)
	mixer := workload.NewMixer(s.cfg.Seed + 1)
	tasks := make([]sched.Task, len(times))
	for i, tm := range times {
		tasks[i] = sched.Task{ID: int64(i), App: workload.BaseName(mixer.Draw(m).Spec.Name), Arrival: tm}
	}
	spec, err := s.schedulerSpec(p)
	if err != nil {
		return Report{}, err
	}
	res, err := s.ctrl.Simulate(spec, machines, tasks, horizon)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Scheduler:    res.Scheduler,
		Machines:     machines,
		Submitted:    res.Submitted,
		Completed:    res.CompletedCount,
		TotalRuntime: res.TotalRuntime,
		TotalIOPS:    res.TotalIOPS,
		MeanRuntime:  res.MeanRuntime(),
		MeanWait:     res.MeanWait(),
		Horizon:      res.Horizon,
	}, nil
}

// WorkflowTask is one stage of a data-intensive scientific workflow: an
// application instance that may only start after the named stages finish.
type WorkflowTask struct {
	// Name identifies the stage within the workflow (unique).
	Name string
	// App is the registered application the stage runs.
	App string
	// After lists stage names that must complete first.
	After []string
}

// RunWorkflow executes a workflow DAG on the cluster under the policy and
// returns the report plus the workflow makespan (completion time of the
// last stage). All stages are submitted at time zero; dependencies gate
// when each becomes schedulable.
func (s *System) RunWorkflow(p Policy, machines int, stages []WorkflowTask) (Report, float64, error) {
	if machines <= 0 {
		return Report{}, 0, fmt.Errorf("tracon: machines must be positive")
	}
	if len(stages) == 0 {
		return Report{}, 0, fmt.Errorf("tracon: empty workflow")
	}
	ids := map[string]int64{}
	for i, st := range stages {
		if _, dup := ids[st.Name]; dup {
			return Report{}, 0, fmt.Errorf("tracon: duplicate stage %q", st.Name)
		}
		ids[st.Name] = int64(i)
	}
	tasks := make([]sched.Task, len(stages))
	for i, st := range stages {
		t := sched.Task{ID: int64(i), App: st.App}
		for _, dep := range st.After {
			id, ok := ids[dep]
			if !ok {
				return Report{}, 0, fmt.Errorf("tracon: stage %q depends on unknown stage %q", st.Name, dep)
			}
			t.DependsOn = append(t.DependsOn, id)
		}
		tasks[i] = t
	}
	spec, err := s.schedulerSpec(p)
	if err != nil {
		return Report{}, 0, err
	}
	if spec.Policy == "mibs" || spec.Policy == "mix" {
		spec.QueueLen = len(tasks)
	}
	res, err := s.ctrl.Simulate(spec, machines, tasks, math.Inf(1))
	if err != nil {
		return Report{}, 0, err
	}
	rep := Report{
		Scheduler:    res.Scheduler,
		Machines:     machines,
		Submitted:    res.Submitted,
		Completed:    res.CompletedCount,
		TotalRuntime: res.TotalRuntime,
		TotalIOPS:    res.TotalIOPS,
		MeanRuntime:  res.MeanRuntime(),
		MeanWait:     res.MeanWait(),
		Horizon:      res.Horizon,
	}
	return rep, res.LastFinish, nil
}

// Speedup is the paper's eq. 5: FIFO total runtime over the policy's.
func Speedup(fifo, policy Report) float64 {
	if policy.TotalRuntime == 0 {
		return 0
	}
	return fifo.TotalRuntime / policy.TotalRuntime
}

// IOBoost is the paper's eq. 6: the policy's total IOPS over FIFO's.
func IOBoost(fifo, policy Report) float64 {
	if fifo.TotalIOPS == 0 {
		return 0
	}
	return policy.TotalIOPS / fifo.TotalIOPS
}

// NormalizedThroughput is Sec. 4.7's T_S / T_FIFO.
func NormalizedThroughput(fifo, policy Report) float64 {
	if fifo.Completed == 0 {
		return 0
	}
	return float64(policy.Completed) / float64(fifo.Completed)
}

// SaveModel serializes an application's trained model as JSON (supported
// for the regression-backed families; the instance-based WMM and forest
// models are retrained from the stored profile instead).
func (s *System) SaveModel(app string, w io.Writer) error {
	m, err := s.ctrl.Library().Model(app)
	if err != nil {
		return err
	}
	return m.Save(w)
}

// LoadModel replaces a registered application's served model with one
// previously written by SaveModel.
func (s *System) LoadModel(r io.Reader) error {
	m, err := model.Load(r)
	if err != nil {
		return err
	}
	return s.ctrl.Library().Replace(m.App, m)
}

// Controller exposes the underlying manager for advanced use (experiment
// drivers); most callers should not need it.
func (s *System) Controller() *core.Controller { return s.ctrl }
